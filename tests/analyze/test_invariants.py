"""InvariantChecker unit tests and engine integration."""

import numpy as np
import pytest

from repro import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                   inject_stuck_at_faults, random_patterns)
from repro.analyze import InvariantChecker
from repro.circuit import generators
from repro.diagnose.bitlists import DiagnosisState
from repro.errors import InvariantViolation
from repro.sim.logicsim import output_rows, simulate


def make_state():
    spec = generators.c17()
    workload = inject_stuck_at_faults(spec, count=1, seed=3)
    patterns = random_patterns(spec, 256, seed=1)
    spec_out = output_rows(spec, simulate(spec, patterns))
    return DiagnosisState(workload.impl, patterns, spec_out)


def test_valid_state_passes():
    checker = InvariantChecker()
    checker.check_state(make_state())
    assert checker.checks_run == 1


def test_overlapping_partition_detected():
    state = make_state()
    state.corr_mask = state.corr_mask | state.err_mask
    with pytest.raises(InvariantViolation, match="not disjoint"):
        InvariantChecker().check_state(state)


def test_incomplete_partition_detected():
    state = make_state()
    state.err_mask = np.zeros_like(state.err_mask)
    state.corr_mask = np.zeros_like(state.corr_mask)
    state.num_err = 0
    state.num_corr = state.patterns.nbits
    with pytest.raises(InvariantViolation, match="not complete"):
        InvariantChecker().check_state(state)


def test_count_mismatch_detected():
    state = make_state()
    state.num_err += 1
    with pytest.raises(InvariantViolation, match="inconsistent"):
        InvariantChecker().check_state(state)


def test_theorem1_preconditions():
    checker = InvariantChecker()
    checker.check_theorem1(10, 2)
    with pytest.raises(InvariantViolation, match="N=0"):
        checker.check_theorem1(10, 0)
    with pytest.raises(InvariantViolation, match="rectified"):
        checker.check_theorem1(0, 2)


def test_lines_live_bounds_and_detached():
    state = make_state()
    checker = InvariantChecker()
    checker.check_lines_live(state, range(len(state.table)))
    with pytest.raises(InvariantViolation, match="outside"):
        checker.check_lines_live(state, [len(state.table)])


def test_engine_runs_clean_with_invariants_enabled():
    """ISSUE acceptance: the quickstart flow with invariant checks on
    passes cleanly and still finds the injected faults."""
    spec = generators.ripple_carry_adder(4)
    workload = inject_stuck_at_faults(spec, count=2, seed=42)
    patterns = random_patterns(spec, 512, seed=1)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, check_invariants=True)
    engine = IncrementalDiagnoser(workload.impl, spec, patterns, config)
    assert engine.invariants is not None
    result = engine.run()
    assert result.solutions
    assert engine.invariants.checks_run > 0


def test_engine_invariants_off_by_default():
    spec = generators.c17()
    workload = inject_stuck_at_faults(spec, count=1, seed=3)
    patterns = random_patterns(spec, 128, seed=1)
    engine = IncrementalDiagnoser(workload.impl, spec, patterns,
                                  DiagnosisConfig())
    assert engine.invariants is None


def test_tree_traversal_with_invariants():
    spec = generators.c17()
    workload = inject_stuck_at_faults(spec, count=1, seed=5)
    patterns = random_patterns(spec, 256, seed=2)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=False,
                             max_errors=2, check_invariants=True)
    engine = IncrementalDiagnoser(workload.impl, spec, patterns, config)
    result = engine.run()
    assert result.found or result.solutions == []
