"""Incremental fact repair == from-scratch recomputation, on every layer.

The property: take a random netlist, materialize every section of its
facts bundle, apply a random journalled edit, obtain the warm-repaired
bundle through :func:`netlist_facts`, and compare it section by section
against a bundle computed from scratch on the same (edited) netlist.
Repeated over 100-edit sequences, including apply-then-revert sequences
that must return the facts to their original state bit-for-bit.

Class *ids* of the structural hash are representation, not fact — the
warm numbering extends the base memo while a scratch numbering starts
over — so equivalence-class sections are compared as partitions
(duplicate groups, constant classes), never as raw literals.
"""

import random

import pytest

from repro.analyze.dataflow import NetlistFacts, netlist_facts
from repro.analyze.incremental import warm_facts
from repro.circuit import GateType, Netlist
from repro.circuit.gatetypes import (MULTI_INPUT_TYPES, SOURCE_TYPES,
                                     arity_ok)

_COMB_MULTI = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR)
_COMB_UNARY = (GateType.BUF, GateType.NOT)


def random_netlist(seed: int, num_inputs: int = 5, num_gates: int = 26,
                   num_dffs: int = 2) -> Netlist:
    """Random acyclic netlist with constants and (optionally) DFFs."""
    rng = random.Random(seed)
    nl = Netlist(f"inc{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    dffs_left = num_dffs
    for g in range(num_gates):
        pool = len(nl.gates)
        roll = rng.random()
        if roll < 0.05:
            nl.add_gate(f"g{g}", rng.choice((GateType.CONST0,
                                             GateType.CONST1)), [])
        elif roll < 0.12 and dffs_left:
            dffs_left -= 1
            nl.add_gate(f"g{g}", GateType.DFF, [rng.randrange(pool)])
        elif roll < 0.3:
            nl.add_gate(f"g{g}", rng.choice(_COMB_UNARY),
                        [rng.randrange(pool)])
        else:
            gtype = rng.choice(_COMB_MULTI)
            n_in = rng.randint(2, min(3, pool))
            nl.add_gate(f"g{g}", gtype,
                        [rng.randrange(pool) for _ in range(n_in)])
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates
             if not fanouts[g.index] and g.gtype is not GateType.INPUT]
    nl.set_outputs(sinks or [len(nl.gates) - 1])
    return nl


# ----------------------------------------------------------------------
# edit generation (acyclicity-preserving)
# ----------------------------------------------------------------------
def _safe_sources(nl: Netlist, sink: int):
    """Sources that do not combinationally depend on ``sink``."""
    cone = nl.fanout_cone(sink)
    return [g.index for g in nl.gates if g.index not in cone]


def _editable(nl: Netlist):
    return [g.index for g in nl.gates
            if g.gtype not in SOURCE_TYPES and g.gtype is not GateType.DFF]


def apply_random_edit(rng: random.Random, nl: Netlist) -> bool:
    """One random journalled mutation; True when something changed."""
    choice = rng.random()
    targets = _editable(nl)
    if not targets:
        return False
    g = rng.choice(targets)
    gate = nl.gates[g]
    if choice < 0.25:
        pool = _COMB_UNARY if len(gate.fanin) == 1 else _COMB_MULTI
        nl.set_gate_type(g, rng.choice(pool))
        return True
    if choice < 0.5:
        srcs = _safe_sources(nl, g)
        if not srcs:
            return False
        nl.replace_fanin_pin(g, rng.randrange(len(gate.fanin)),
                             rng.choice(srcs))
        return True
    if choice < 0.62:
        if len(gate.fanin) < 2:
            return False
        nl.remove_fanin_pin(g, rng.randrange(len(gate.fanin)))
        return True
    if choice < 0.74:
        if gate.gtype not in MULTI_INPUT_TYPES | {GateType.BUF,
                                                  GateType.NOT}:
            return False
        srcs = _safe_sources(nl, g)
        if not srcs:
            return False
        nl.add_fanin_pin(g, rng.choice(srcs))
        return True
    if choice < 0.82:
        nl.insert_gate_on_branch(g, rng.randrange(len(gate.fanin)),
                                 rng.choice(_COMB_UNARY))
        return True
    if choice < 0.9:
        nl.tie_branch_to_constant(g, rng.randrange(len(gate.fanin)),
                                  rng.randint(0, 1))
        return True
    if choice < 0.96:
        outs = list(nl.outputs)
        rng.shuffle(outs)
        extra = rng.choice(targets)
        if extra not in outs:
            outs.append(extra)
        nl.set_outputs(outs)
        return True
    if len(gate.fanin) == 1:
        nl.bypass_gate(g)
        return True
    return False


# ----------------------------------------------------------------------
# section-by-section comparison
# ----------------------------------------------------------------------
def materialize(facts: NetlistFacts) -> None:
    facts.constants()
    facts.literals()
    facts.implications()
    facts._dom_bits()
    facts.scoap()
    facts.testability()
    for g in facts.netlist.gates[:6]:
        facts.cone(g.index)
    if facts.netlist.dffs():
        facts.reset_fixpoint(0)


def extract(facts: NetlistFacts) -> dict:
    """Every fact the bundle derives, in representation-free form."""
    imp = facts.implications()
    out = {
        "constants": dict(facts.constants()),
        "implied": dict(imp.implied_constants),
        "impossible": imp._impossible,
        "reach": list(imp._reach),
        "structural_constants": dict(facts.structural_constants()),
        "duplicate_groups": facts.duplicate_groups(),
        "observable": facts.observable_set(),
        "dominators": list(facts._dom_bits()),
        "blocked": facts.blocked_signals(),
        "cones": {g.index: facts.cone(g.index)
                  for g in facts.netlist.gates},
        "scoap": (facts.scoap().cc0, facts.scoap().cc1,
                  facts.scoap().co),
        "sites": {site: (rec.observable, rec.escape, rec.requirements)
                  for site, rec in facts.testability().sites.items()},
        "untestable": facts.testability().untestable,
    }
    if facts.netlist.dffs():
        fx = facts.reset_fixpoint(0)
        out["reset"] = (fx.state, fx.values, fx.constants,
                        fx.stuck_registers, fx.iterations)
    return out


def assert_facts_equal(warm: NetlistFacts, scratch: NetlistFacts,
                       context: str) -> None:
    got, want = extract(warm), extract(scratch)
    for key in want:
        assert got[key] == want[key], (
            f"{context}: section {key!r} diverged\n"
            f"warm:    {got[key]!r}\nscratch: {want[key]!r}")


# ----------------------------------------------------------------------
# the fuzz properties (CI smoke runs `-k fuzz`)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_fuzz_incremental_equals_scratch_over_100_edits(seed):
    rng = random.Random(1000 + seed)
    nl = random_netlist(seed)
    facts = netlist_facts(nl)
    materialize(facts)
    applied = 0
    while applied < 100:
        if not apply_random_edit(rng, nl):
            continue
        applied += 1
        warm = netlist_facts(nl)
        assert warm.version == nl.version
        # the repair really ran: eager sections arrived materialized
        assert warm._constants is not None
        materialize(warm)
        if applied % 10 == 0 or applied < 5:
            assert_facts_equal(warm, NetlistFacts(nl),
                               f"seed={seed} edit={applied}")
        facts = warm
    assert_facts_equal(facts, NetlistFacts(nl), f"seed={seed} final")


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_apply_then_revert_restores_fact_state(seed):
    rng = random.Random(2000 + seed)
    nl = random_netlist(seed, num_dffs=2)
    baseline = extract(netlist_facts(nl))
    shape0 = [(g.gtype, list(g.fanin)) for g in nl.gates]
    outs0 = list(nl.outputs)

    # Invertible edit vocabulary: snapshot the touched gate, restore later.
    undo = []
    applied = 0
    while applied < 100:
        targets = _editable(nl)
        g = rng.choice(targets)
        gate = nl.gates[g]
        snap = (g, gate.gtype, list(gate.fanin))
        roll = rng.random()
        if roll < 0.4:
            pool = _COMB_UNARY if len(gate.fanin) == 1 else _COMB_MULTI
            new_type = rng.choice(pool)
            if new_type is gate.gtype:
                continue
            nl.set_gate_type(g, new_type)
        elif roll < 0.75:
            srcs = _safe_sources(nl, g)
            if not srcs:
                continue
            pin = rng.randrange(len(gate.fanin))
            if srcs == [gate.fanin[pin]]:
                continue
            nl.replace_fanin_pin(g, pin, rng.choice(srcs))
        elif roll < 0.9 and len(gate.fanin) >= 2:
            nl.remove_fanin_pin(g, rng.randrange(len(gate.fanin)))
        else:
            outs = list(nl.outputs)
            rng.shuffle(outs)
            snap = ("outputs", list(nl.outputs))
            nl.set_outputs(outs)
        undo.append(snap)
        applied += 1
        materialize(netlist_facts(nl))   # keep repairing warm state

    for snap in reversed(undo):
        if snap[0] == "outputs":
            nl.set_outputs(snap[1])
            continue
        g, gtype, fanin = snap
        if arity_ok(nl.gates[g].gtype, len(fanin)):
            nl.set_fanin(g, fanin)
            nl.set_gate_type(g, gtype)
        else:
            nl.set_gate_type(g, gtype)
            nl.set_fanin(g, fanin)
        materialize(netlist_facts(nl))

    assert [(g.gtype, list(g.fanin)) for g in nl.gates] == shape0
    assert nl.outputs == outs0
    final = netlist_facts(nl)
    assert final._constants is not None  # still on the warm path
    got = extract(final)
    assert got == baseline
    assert_facts_equal(final, NetlistFacts(nl), f"seed={seed} reverted")


def test_fuzz_sequential_reset_fixpoint_warm_start():
    rng = random.Random(77)
    nl = random_netlist(9, num_gates=30, num_dffs=4)
    assert nl.dffs()
    facts = netlist_facts(nl)
    facts.reset_fixpoint(0)
    facts.reset_fixpoint(1)  # two cached initial states
    for step in range(40):
        if not apply_random_edit(rng, nl):
            continue
        warm = netlist_facts(nl)
        scratch = NetlistFacts(nl)
        for init in (0, 1):
            w, s = warm.reset_fixpoint(init), scratch.reset_fixpoint(init)
            assert w.state == s.state, f"step={step} init={init}"
            assert w.values == s.values, f"step={step} init={init}"
            assert w.constants == s.constants
            assert w.stuck_registers == s.stuck_registers
            assert w.iterations == s.iterations, \
                f"step={step} init={init}: warm iteration count diverged"
        facts = warm


# ----------------------------------------------------------------------
# targeted section properties
# ----------------------------------------------------------------------
def test_warm_facts_does_not_mutate_base():
    nl = random_netlist(3)
    base = netlist_facts(nl)
    materialize(base)
    before = extract(base)
    child = nl.copy()
    v0 = child.version
    child.set_gate_type(child.index_of("g5"),
                        GateType.NOR if child.gate("g5").gtype
                        is not GateType.NOR else GateType.NAND)
    child.tie_branch_to_constant(
        child.index_of("g9"), 0, 1) \
        if len(child.gate("g9").fanin) else None
    delta = child.edits_since(v0)
    warm = warm_facts(child, base, delta)
    assert warm is not base
    assert extract(base) == before   # parent bundle untouched
    assert_facts_equal(warm, NetlistFacts(child), "child repair")


def test_warm_facts_sections_filter_limits_repair():
    nl = random_netlist(4)
    base = netlist_facts(nl)
    materialize(base)
    child = nl.copy()
    child.set_gate_type(child.index_of("g7"),
                        GateType.XOR if child.gate("g7").gtype
                        is not GateType.XOR else GateType.XNOR)
    delta = child.edits_since(0)
    warm = warm_facts(child, base, delta,
                      sections={"constants", "observable", "dominators",
                                "cones"})
    assert warm._constants is not None
    assert warm._dominators is not None
    assert warm._implications is None    # outside the filter: lazy
    assert warm._literals is None
    assert_facts_equal(warm, NetlistFacts(child), "filtered repair")


def test_empty_delta_copies_sections():
    nl = random_netlist(5)
    base = netlist_facts(nl)
    materialize(base)
    delta = nl.edits_since(nl.version)
    assert delta is not None and not delta
    warm = warm_facts(nl, base, delta)
    assert warm.constants() == base.constants()
    assert warm.observable_set() is base.observable_set()


def test_prover_survives_edits_and_answers_for_new_function():
    nl = random_netlist(6, num_dffs=0)
    facts = netlist_facts(nl)
    prover = facts.prover(nvectors=16)
    prover.sweep()
    rng = random.Random(11)
    for _ in range(10):
        if not apply_random_edit(rng, nl):
            continue
        warm = netlist_facts(nl)
        if warm._prover is None:
            continue  # refresh refused (e.g. cyclic); rebuilt lazily
        assert warm._prover is prover  # stolen, not rebuilt
        from repro.analyze.prove import Prover
        scratch = Prover(nl, facts=NetlistFacts(nl), nvectors=16)
        assert warm.prover().sweep(force=True).classes \
            == scratch.sweep().classes
        assert {s: (c.value, c.proof != "")
                for s, c in warm.prover().sweep().constants.items()} \
            == {s: (c.value, c.proof != "")
                for s, c in scratch.sweep().constants.items()}


def test_version_mismatch_after_dirty_recomputes_scratch():
    nl = random_netlist(7)
    facts = netlist_facts(nl)
    materialize(facts)
    nl._dirty()
    fresh = netlist_facts(nl)
    assert fresh is not facts
    assert fresh._constants is None      # scratch path: all lazy
    assert_facts_equal(fresh, NetlistFacts(nl), "post-dirty")
