"""Lint driver API: reporters, load policies, registry, validate shim."""

import json

import pytest

from repro.analyze import (DEFAULT_REGISTRY, Severity, lint_netlist,
                           get_load_lint_policy, lint_on_load,
                           set_load_lint_policy)
from repro.circuit import GateType, Netlist, issues, validate
from repro.circuit.validate import report as validate_report
from repro.errors import NetlistError, ParseError


def dirty():
    nl = Netlist("dirty")
    a = nl.add_input("a")
    n1 = nl.add_gate("n1", GateType.NOT, [a])
    n2 = nl.add_gate("n2", GateType.NOT, [n1])
    nl.set_outputs([n2])
    nl.add_gate("dead", GateType.NOT, [a])
    return nl


def broken():
    nl = Netlist("broken")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    nl.gates[g].fanin = [42]
    return nl


def test_registry_has_all_groups():
    groups = {rule.group for rule in DEFAULT_REGISTRY}
    assert groups == {"structural", "semantic", "deep", "prove", "seq",
                      "testability"}
    assert len(DEFAULT_REGISTRY) >= 15


def test_text_report_mentions_rule_and_severity():
    text = lint_netlist(dirty()).to_text()
    assert "[dead-gate]" in text or "[fanout-free]" in text
    assert "warning" in text


def test_json_report_round_trips():
    data = json.loads(lint_netlist(dirty()).to_json())
    assert data["netlist"] == "dirty"
    assert data["counts"]["error"] == 0
    assert any(d["rule"] == "inverter-chain"
               for d in data["diagnostics"])


def test_exit_codes():
    clean_report = lint_netlist_clean()
    assert clean_report.exit_code() == 0
    warn_report = lint_netlist(dirty())
    assert warn_report.exit_code() == 0
    assert warn_report.exit_code(strict=True) == 1
    assert lint_netlist(broken()).exit_code() == 1


def lint_netlist_clean():
    nl = Netlist("clean")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    return lint_netlist(nl)


def test_load_policy_get_set_and_validation():
    assert get_load_lint_policy() == "errors"
    previous = set_load_lint_policy("off")
    try:
        assert previous == "errors"
        assert get_load_lint_policy() == "off"
        with pytest.raises(ValueError, match="unknown lint policy"):
            set_load_lint_policy("bogus")
    finally:
        set_load_lint_policy(previous)


def test_lint_on_load_policies(capsys):
    assert lint_on_load(dirty(), policy="off") is None
    report = lint_on_load(dirty(), policy="errors")
    assert report is not None and report.ok
    lint_on_load(dirty(), policy="warn", source="x.bench")
    err = capsys.readouterr().err
    assert "x.bench: warning:" in err
    with pytest.raises(ParseError, match="strict"):
        lint_on_load(dirty(), policy="strict")
    with pytest.raises(ParseError, match="lint failed"):
        lint_on_load(broken(), policy="errors")


def test_validate_shim_still_raises_first_problem():
    with pytest.raises(NetlistError, match="missing gate 42"):
        validate(broken())
    assert issues(broken()) != []
    assert issues(dirty()) == []  # warnings are not validate() problems


def test_validate_report_bridge_exposes_warnings():
    rep = validate_report(dirty())
    assert rep.warnings or rep.by_severity(Severity.INFO)
