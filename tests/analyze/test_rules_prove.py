"""Prove rule group: planted defects must come back PROVEN, exactly.

The planted workloads are *hash-blind*: the duplicate cones and
constant lines are invisible to the structural normalization PR 3 uses
(different gate decompositions of the same function), so a PROVEN
verdict here can only come from the SAT sweep — which is the point of
the rule group.
"""

import pytest

from repro.analyze import lint_netlist
from repro.circuit import GateType, Netlist


def planted_duplicates() -> Netlist:
    """XOR(a,b) next to its AND/OR decomposition — hash-blind twins."""
    n = Netlist("dup")
    a = n.add_input("a")
    b = n.add_input("b")
    x = n.add_gate("x", GateType.XOR, [a, b])
    na = n.add_gate("na", GateType.NOT, [a])
    nb = n.add_gate("nb", GateType.NOT, [b])
    t1 = n.add_gate("t1", GateType.AND, [a, nb])
    t2 = n.add_gate("t2", GateType.AND, [na, b])
    y = n.add_gate("y", GateType.OR, [t1, t2])
    n.set_outputs([x, y])
    return n


def planted_constant() -> Netlist:
    """OR over all four minterms of two variables: constant 1, but
    opaque to ternary propagation and hash cancellation alike."""
    n = Netlist("const")
    a = n.add_input("a")
    b = n.add_input("b")
    na = n.add_gate("na", GateType.NOT, [a])
    nb = n.add_gate("nb", GateType.NOT, [b])
    m0 = n.add_gate("m0", GateType.AND, [na, nb])
    m1 = n.add_gate("m1", GateType.AND, [na, b])
    m2 = n.add_gate("m2", GateType.AND, [a, nb])
    m3 = n.add_gate("m3", GateType.AND, [a, b])
    tank = n.add_gate("tank", GateType.OR, [m0, m1, m2, m3])
    sink = n.add_gate("sink", GateType.AND, [tank, a])
    n.set_outputs([sink])
    return n


def planted_redundant_fanin() -> Netlist:
    """Absorption: AND(a, AND(a, b)) — pin 0 carries no information."""
    n = Netlist("redun")
    a = n.add_input("a")
    b = n.add_input("b")
    c = n.add_input("c")
    ab = n.add_gate("ab", GateType.AND, [a, b])
    absb = n.add_gate("absb", GateType.AND, [a, ab])
    o = n.add_gate("o", GateType.OR, [absb, c])
    n.set_outputs([o])
    return n


def findings(report, rule, severity=None):
    return [d for d in report.diagnostics if d.rule == rule
            and (severity is None or str(d.severity) == severity)]


def test_planted_duplicates_reported_proven():
    report = lint_netlist(planted_duplicates(), prove=True)
    hits = findings(report, "proven-duplicate-logic", "warning")
    assert len(hits) == 1
    data = hits[0].data
    assert data["status"] == "proven"
    assert set(data["gates"]) == {"x", "y"}
    assert data["proof"] == "sat-sweep"   # hash-blind: SAT had to work


def test_planted_constant_reported_proven():
    report = lint_netlist(planted_constant(), prove=True)
    hits = findings(report, "proven-const-line", "warning")
    assert any(d.gate == "tank" and d.data["value"] == 1
               and d.data["status"] == "proven" for d in hits)
    tank = next(d for d in hits if d.gate == "tank")
    assert tank.data["proof"] == "sat-sweep"


def test_planted_redundant_fanin_reported_proven():
    report = lint_netlist(planted_redundant_fanin(), prove=True)
    hits = findings(report, "proven-redundant-fanin", "warning")
    assert any(d.gate == "absb" and d.data["pin"] == 0
               and d.data["source"] == "a" for d in hits)


def test_clean_circuit_yields_no_prove_findings(c17):
    report = lint_netlist(c17, prove=True)
    assert not findings(report, "proven-duplicate-logic", "warning")
    assert not findings(report, "proven-const-line", "warning")
    assert report.prove_stats is not None


def test_prove_stats_in_json_report():
    report = lint_netlist(planted_duplicates(), prove=True)
    payload = report.to_dict()
    stats = payload["prove_stats"]
    assert stats["proven"] >= 1
    assert "time_s" not in stats          # wall time is not reproducible
    for key in ("decisions", "propagations", "conflicts", "restarts"):
        assert key in stats["solver"]
    # and the text reporter mentions the effort line
    assert "SAT queries" in report.to_text()


def test_prove_group_gated_on_errors():
    n = Netlist("loop")
    a = n.add_input("a")
    g1 = n.add_gate("g1", GateType.AND, [a, a])
    g2 = n.add_gate("g2", GateType.AND, [g1, a])
    n.set_fanin(g1, [g2, a])              # combinational cycle
    n.set_outputs([g2])
    report = lint_netlist(n, prove=True)
    assert not report.ok
    assert "prove" in report.skipped_groups
    assert report.prove_stats is None


def test_unknown_budget_reported_as_info():
    """With a 1-conflict budget the parity twins stay undecided: the
    finding must be INFO/unknown, never a silent drop or false PROVEN."""
    n = Netlist("parity")
    ins = [n.add_input(f"i{k}") for k in range(6)]
    left = n.add_gate("left", GateType.XOR, ins)
    h1 = n.add_gate("h1", GateType.XOR, ins[:3])
    h2 = n.add_gate("h2", GateType.XOR, ins[3:])
    right = n.add_gate("right", GateType.XOR, [h1, h2])
    n.set_outputs([left, right])
    report = lint_netlist(n, prove=True, prove_budget=1)
    unknowns = findings(report, "proven-duplicate-logic", "info")
    assert any(d.data["status"] == "unknown" for d in unknowns)
    assert not findings(report, "proven-duplicate-logic", "warning")
    assert report.prove_stats["unknown"] >= 1


def test_near_miss_refutation_carries_counterexample():
    """Every refuted near-miss INFO finding carries the refuting
    vector, machine-readable, in its data payload."""
    report = lint_netlist(planted_constant(), prove=True)
    for d in findings(report, "proven-duplicate-logic", "info"):
        if d.data["status"] == "refuted":
            assert isinstance(d.data["counterexample"], list)
            assert d.data["counterexample"]


def test_suppression_works_for_prove_rules():
    report = lint_netlist(planted_duplicates(), prove=True,
                          suppress=["proven-duplicate-logic"])
    assert not findings(report, "proven-duplicate-logic")
    with pytest.raises(KeyError):
        lint_netlist(planted_duplicates(), suppress=["proven-typo"])
