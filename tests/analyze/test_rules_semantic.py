"""Per-rule unit tests for the semantic lint group, plus the
acceptance scenario from the issue (loop + dead cone + unobservable
line all reported in one pass)."""

from repro.analyze import Severity, lint_netlist
from repro.circuit import GateType, Netlist


def base():
    nl = Netlist("s")
    nl.add_input("a")
    nl.add_input("b")
    return nl


def findings(netlist, rule):
    return [d for d in lint_netlist(netlist).diagnostics
            if d.rule == rule]


def test_comb_loop_reports_the_cycle():
    nl = base()
    g1 = nl.add_gate("g1", GateType.AND, [0, 1])
    g2 = nl.add_gate("g2", GateType.OR, [g1, 0])
    nl.gates[g1].fanin = [0, g2]
    nl._dirty()
    nl.set_outputs([g2])
    hits = findings(nl, "comb-loop")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert hits[0].data["cycle"] in (["g1", "g2"], ["g2", "g1"])
    assert "g1 -> g2" in hits[0].message or "g2 -> g1" in hits[0].message


def test_self_loop_detected():
    nl = base()
    g = nl.add_gate("g", GateType.AND, [0, 1])
    nl.gates[g].fanin = [0, g]
    nl._dirty()
    nl.set_outputs([g])
    [hit] = findings(nl, "comb-loop")
    assert hit.data["cycle"] == ["g"]


def test_dff_loop_is_not_combinational():
    nl = base()
    d = nl.add_gate("d", GateType.AND, [0, 0])
    q = nl.add_gate("q", GateType.DFF, [d])
    nl.gates[d].fanin = [0, q]
    nl._dirty()
    nl.set_outputs([q])
    assert not findings(nl, "comb-loop")


def test_dead_gate_and_fanout_free_split():
    nl = base()
    live = nl.add_gate("live", GateType.AND, [0, 1])
    d1 = nl.add_gate("d1", GateType.NOT, [0])    # feeds only d2
    nl.add_gate("d2", GateType.AND, [d1, 1])     # feeds nothing
    nl.set_outputs([live])
    dead = findings(nl, "dead-gate")
    free = findings(nl, "fanout-free")
    assert [d.gate for d in dead] == ["d1"]
    assert [d.gate for d in free] == ["d2"]


def test_unused_input_not_flagged_fanout_free():
    nl = base()
    g = nl.add_gate("g", GateType.NOT, [0])  # input b unused
    nl.set_outputs([g])
    assert not findings(nl, "fanout-free")


def test_unobservable_line_behind_dff():
    nl = base()
    u = nl.add_gate("u", GateType.XOR, [0, 1])
    q = nl.add_gate("q", GateType.DFF, [u])
    o = nl.add_gate("o", GateType.OR, [q, 0])
    nl.set_outputs([o])
    hits = findings(nl, "unobservable-line")
    assert {d.gate for d in hits} == {"u", "b"}


def test_const_feed():
    nl = base()
    c = nl.add_gate("c", GateType.CONST1)
    g = nl.add_gate("g", GateType.AND, [0, c])
    nl.set_outputs([g])
    [hit] = findings(nl, "const-feed")
    assert hit.gate == "g"
    assert hit.data["pins"] == [1]


def test_foldable_logic_duplicate_fanin():
    nl = base()
    g = nl.add_gate("g", GateType.AND, [0, 0])
    nl.set_outputs([g])
    [hit] = findings(nl, "foldable-logic")
    assert hit.severity is Severity.INFO
    assert hit.data["signals"] == ["a"]


def test_inverter_chain():
    nl = base()
    n1 = nl.add_gate("n1", GateType.NOT, [0])
    n2 = nl.add_gate("n2", GateType.NOT, [n1])
    nl.set_outputs([n2])
    [hit] = findings(nl, "inverter-chain")
    assert hit.gate == "n2"
    assert hit.data["feeder"] == "n1"


def test_acceptance_loop_dead_cone_unobservable_together():
    """ISSUE acceptance: one netlist seeded with a combinational loop,
    a dead cone and an unobservable line reports all three."""
    nl = base()
    g1 = nl.add_gate("g1", GateType.AND, [0, 1])
    g2 = nl.add_gate("g2", GateType.OR, [g1, 0])
    nl.gates[g1].fanin = [0, g2]          # loop g1 <-> g2
    nl._dirty()
    d1 = nl.add_gate("d1", GateType.NOT, [0])
    nl.add_gate("d2", GateType.AND, [d1, 1])   # dead cone
    u = nl.add_gate("u", GateType.XOR, [0, 1])
    q = nl.add_gate("q", GateType.DFF, [u])    # u unobservable
    o = nl.add_gate("o", GateType.OR, [g2, q])
    nl.set_outputs([o])
    report = lint_netlist(nl)
    fired = {d.rule for d in report.diagnostics}
    assert {"comb-loop", "dead-gate", "unobservable-line"} <= fired
    assert report.exit_code() != 0
