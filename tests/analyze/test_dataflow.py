"""Property tests for the dataflow fixed points.

Every analysis is pinned against a brute-force oracle on random small
netlists: constants and implications against exhaustive simulation of
all input vectors, dominators against explicit enumeration of every
combinational path to a primary output, equivalence classes against
bit-for-bit value comparison.
"""

import random

import pytest

from repro.analyze.dataflow import (NetlistFacts, netlist_facts,
                                    run_dataflow, TernaryConstants,
                                    strongly_connected_components)
from repro.circuit import GateType, Netlist, generators
from repro.sim import PatternSet
from repro.sim.logicsim import simulate

_GATE_TYPES = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF)


def random_netlist(seed: int, num_inputs: int = 4,
                   num_gates: int = 12) -> Netlist:
    """Random acyclic netlist, with constants sprinkled in."""
    rng = random.Random(seed)
    nl = Netlist(f"rnd{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    for g in range(num_gates):
        roll = rng.random()
        if roll < 0.08:
            nl.add_gate(f"g{g}", rng.choice((GateType.CONST0,
                                             GateType.CONST1)), [])
            continue
        gtype = rng.choice(_GATE_TYPES)
        pool = len(nl.gates)
        n_in = 1 if gtype in (GateType.NOT, GateType.BUF) else \
            rng.randint(2, min(3, pool))
        nl.add_gate(f"g{g}", gtype,
                    [rng.randrange(pool) for _ in range(n_in)])
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates
             if not fanouts[g.index] and g.gtype is not GateType.INPUT]
    nl.set_outputs(sinks or [len(nl.gates) - 1])
    return nl


def exhaustive_rows(nl: Netlist):
    """Per-gate value rows over all input vectors, as Python ints."""
    patterns = PatternSet.exhaustive(nl.num_inputs)
    values = simulate(nl, patterns)
    mask = (1 << patterns.nbits) - 1
    rows = [int.from_bytes(row.tobytes(), "little") & mask
            for row in values]
    return rows, patterns.nbits


SEEDS = range(12)


# ----------------------------------------------------------------------
# ternary constants vs exhaustive simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_constants_sound_vs_exhaustive(seed):
    nl = random_netlist(seed)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    for index, value in netlist_facts(nl).constants().items():
        assert rows[index] == (full if value else 0), \
            f"signal {nl.gates[index].name} claimed const {value}"


@pytest.mark.parametrize("seed", SEEDS)
def test_deep_constants_sound_vs_exhaustive(seed):
    """Implication- and hash-derived constants hold on every vector."""
    nl = random_netlist(seed)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    for index, value in netlist_facts(nl).known_constants(True).items():
        assert rows[index] == (full if value else 0)


def test_implied_constant_that_ternary_cannot_see():
    nl = Netlist("contr")
    a = nl.add_input("a")
    na = nl.add_gate("na", GateType.NOT, [a])
    z = nl.add_gate("z", GateType.AND, [a, na])
    w = nl.add_gate("w", GateType.NOR, [z, z])
    nl.set_outputs([w])
    facts = netlist_facts(nl)
    assert facts.constants() == {}
    deep = facts.known_constants(deep=True)
    assert deep[z] == 0 and deep[w] == 1


def test_structural_constant_from_cancellation():
    nl = Netlist("xorxx")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g = nl.add_gate("g", GateType.AND, [a, b])
    x = nl.add_gate("x", GateType.XOR, [g, g])
    nl.set_outputs([x])
    facts = netlist_facts(nl)
    assert facts.structural_constants()[x] == 0


# ----------------------------------------------------------------------
# implications vs exhaustive simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_implications_sound_vs_exhaustive(seed):
    nl = random_netlist(seed)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    impl = netlist_facts(nl).implications()
    for signal in range(len(nl.gates)):
        for value in (0, 1):
            where = rows[signal] if value else full & ~rows[signal]
            if impl.impossible(signal, value):
                assert where == 0, \
                    f"{nl.gates[signal].name}={value} claimed impossible"
                continue
            for other, other_value in impl.implied_by(signal, value):
                target = rows[other] if other_value else \
                    full & ~rows[other]
                assert where & ~target == 0, (
                    f"{nl.gates[signal].name}={value} does not imply "
                    f"{nl.gates[other].name}={other_value}")


def test_implication_contrapositive_closure():
    nl = Netlist("chain")
    a = nl.add_input("a")
    b = nl.add_gate("b", GateType.AND, [a, a])
    c = nl.add_gate("c", GateType.AND, [b, a])
    nl.set_outputs([c])
    impl = netlist_facts(nl).implications()
    # c=1 => a=1 transitively; contrapositive a=0 => c=0.
    assert impl.holds(c, 1, a, 1)
    assert impl.holds(a, 0, c, 0)


# ----------------------------------------------------------------------
# equivalence classes vs exhaustive simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_duplicate_groups_sound_vs_exhaustive(seed):
    nl = random_netlist(seed)
    rows, _nbits = exhaustive_rows(nl)
    for group in netlist_facts(nl).duplicate_groups():
        baseline = rows[group[0]]
        for member in group[1:]:
            assert rows[member] == baseline


def test_duplicate_groups_normalize_order_and_phase():
    nl = Netlist("norm")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g1 = nl.add_gate("g1", GateType.AND, [a, b])
    g2 = nl.add_gate("g2", GateType.AND, [b, a])
    g3 = nl.add_gate("g3", GateType.NOR, [a, b])
    o = nl.add_gate("o", GateType.OR, [b, a])
    g4 = nl.add_gate("g4", GateType.NOT, [o])
    # z = g1 ^ not(o); y = not(g2 ^ o) — identical after phase folding.
    z = nl.add_gate("z", GateType.XOR, [g1, g3])
    y = nl.add_gate("y", GateType.XNOR, [g2, o])
    nl.set_outputs([z, y])
    groups = netlist_facts(nl).duplicate_groups()
    assert sorted([g1, g2]) in groups          # commuted inputs
    assert sorted([g3, g4]) in groups          # De Morgan phase
    assert sorted([z, y]) in groups            # XOR phase extraction


# ----------------------------------------------------------------------
# dominators vs brute-force path enumeration
# ----------------------------------------------------------------------
def brute_force_dominators(nl: Netlist, start: int):
    """Intersection of the node sets of every path start -> some PO."""
    outputs = set(nl.outputs)
    fanouts = nl.fanouts()
    gates = nl.gates
    meet = [None]

    def walk(node, on_path):
        on_path = on_path | {node}
        if node in outputs:
            meet[0] = on_path if meet[0] is None else meet[0] & on_path
            return
        for nxt in fanouts[node]:
            if gates[nxt].gtype is GateType.DFF or nxt in on_path:
                continue
            walk(nxt, on_path)

    walk(start, frozenset())
    return meet[0]


@pytest.mark.parametrize("seed", SEEDS)
def test_dominators_match_path_enumeration(seed):
    nl = random_netlist(seed)
    facts = netlist_facts(nl)
    for gate in nl.gates:
        expected = brute_force_dominators(nl, gate.index)
        assert facts.dominators(gate.index) == expected


def test_dominators_stop_at_primary_output():
    """Observation happens at the PO pin even when the PO has fanout."""
    nl = Netlist("po-fanout")
    a = nl.add_input("a")
    po = nl.add_gate("po", GateType.NOT, [a])
    more = nl.add_gate("more", GateType.NOT, [po])
    nl.set_outputs([po, more])
    facts = netlist_facts(nl)
    assert facts.dominators(po) == frozenset({po})
    assert facts.dominators(a) == frozenset({a, po})


# ----------------------------------------------------------------------
# engine plumbing
# ----------------------------------------------------------------------
def test_scc_order_is_dependencies_first():
    succ = {0: [1], 1: [2], 2: [1, 3], 3: []}
    comps = strongly_connected_components(4, lambda i: succ[i])
    position = {node: idx for idx, comp in enumerate(comps)
                for node in comp}
    assert position[3] < position[1] == position[2] < position[0]


def test_fixpoint_on_cyclic_netlist_terminates():
    nl = Netlist("cyc")
    a = nl.add_input("a")
    g1 = nl.add_gate("g1", GateType.AND, [a, a])
    g2 = nl.add_gate("g2", GateType.OR, [g1, a])
    nl.set_fanin(g1, [g2, a])
    nl.set_outputs([g2])
    values = run_dataflow(nl, TernaryConstants())
    assert values == [None, None, None]  # oscillator stays X
    facts = netlist_facts(nl)
    assert facts.summary(deep=True)["netlist"] == "cyc"


def test_cycle_forced_constant_resolves():
    """A controlling value from outside a loop decides it."""
    nl = Netlist("forced")
    c0 = nl.add_gate("c0", GateType.CONST0, [])
    g1 = nl.add_gate("g1", GateType.AND, [c0, c0])
    g2 = nl.add_gate("g2", GateType.AND, [g1, c0])
    nl.set_fanin(g1, [g2, c0])
    nl.set_outputs([g2])
    values = run_dataflow(nl, TernaryConstants())
    assert values[g1] == 0 and values[g2] == 0


# ----------------------------------------------------------------------
# caching / invalidation
# ----------------------------------------------------------------------
def test_facts_cached_until_mutation(c17):
    first = netlist_facts(c17)
    assert netlist_facts(c17) is first


def test_facts_invalidated_by_mutation():
    nl = generators.c17()
    facts = netlist_facts(nl)
    before = dict(facts.constants())
    assert isinstance(facts, NetlistFacts)
    tied = nl.add_gate("tie", GateType.CONST0, [])
    target = nl.outputs[0]
    nl.set_fanin(target, [tied, nl.gates[target].fanin[1]])
    fresh = netlist_facts(nl)
    assert fresh is not facts
    assert before == {}  # c17 has no constants
    assert fresh.constants()  # the tied line now propagates


def test_facts_results_track_structure():
    nl = Netlist("track")
    a = nl.add_input("a")
    b = nl.add_gate("b", GateType.BUF, [a])
    nl.set_outputs([b])
    assert netlist_facts(nl).dominators(a) == frozenset({a, b})
    c = nl.add_gate("c", GateType.NOT, [a])
    nl.set_outputs([b, c])
    assert netlist_facts(nl).dominators(a) == frozenset({a})
