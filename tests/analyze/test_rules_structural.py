"""Per-rule unit tests for the structural lint group."""

import pytest

from repro.analyze import Severity, lint_netlist
from repro.circuit import GateType, Netlist


def good():
    nl = Netlist("g")
    a = nl.add_input("a")
    g = nl.add_gate("g", GateType.NOT, [a])
    nl.set_outputs([g])
    return nl


def rules_fired(netlist):
    return {d.rule for d in lint_netlist(netlist).diagnostics}


def findings(netlist, rule):
    return [d for d in lint_netlist(netlist).diagnostics
            if d.rule == rule]


def test_clean_netlist_is_clean():
    report = lint_netlist(good())
    assert report.clean
    assert report.ok
    assert report.exit_code() == 0


def test_index_integrity():
    nl = good()
    nl.gates[1].index = 42
    hits = findings(nl, "index-integrity")
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert "index field 42" in hits[0].message


def test_duplicate_name_reported_once_per_name():
    nl = good()
    nl.gates.append(nl.gates[0].copy())
    nl.gates.append(nl.gates[0].copy())
    nl.gates[2].index, nl.gates[3].index = 2, 3
    hits = findings(nl, "duplicate-name")
    assert len(hits) == 1  # 'a' appears 3 times -> one diagnostic
    assert hits[0].data["indices"] == [0, 2, 3]


def test_name_map_stale_entry():
    nl = good()
    nl._name2idx["ghost"] = 7
    assert any("out of range" in d.message
               for d in findings(nl, "name-map"))
    nl2 = good()
    nl2._name2idx["g"] = 0
    assert any("is named" in d.message for d in findings(nl2, "name-map"))


def test_name_map_missing_gate():
    nl = good()
    del nl._name2idx["g"]
    assert any("missing from the name map" in d.message
               for d in findings(nl, "name-map"))


def test_arity():
    nl = good()
    nl.gates[1].fanin = [0, 0]
    hits = findings(nl, "arity")
    assert len(hits) == 1
    assert "NOT with 2" in hits[0].message


def test_fanin_range():
    nl = good()
    nl.gates[1].fanin = [17]
    hits = findings(nl, "fanin-range")
    assert "references missing gate 17" in hits[0].message


def test_output_range():
    nl = good()
    nl.outputs = [99]
    assert findings(nl, "output-range")


def test_no_outputs_and_no_inputs():
    nl = good()
    nl.outputs = []
    assert findings(nl, "no-outputs")
    nl2 = Netlist("x")
    c = nl2.add_gate("c", GateType.CONST1)
    nl2.set_outputs([c])
    assert findings(nl2, "no-inputs")


def test_structural_errors_gate_semantic_rules():
    nl = good()
    nl.gates[1].fanin = [17]  # semantic traversals would crash on this
    report = lint_netlist(nl)
    assert "semantic" in report.skipped_groups
    assert all(d.rule != "dead-gate" for d in report.diagnostics)


def test_suppression_and_unknown_rule():
    nl = good()
    nl.outputs = []
    report = lint_netlist(nl, suppress=["no-outputs"])
    assert all(d.rule != "no-outputs" for d in report.diagnostics)
    assert report.suppressed == ["no-outputs"]
    with pytest.raises(KeyError):
        lint_netlist(nl, suppress=["not-a-rule"])
