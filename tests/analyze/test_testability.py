"""SCOAP costs and static untestable-fault identification.

The two properties the ISSUE demands of the testability sections:

* the lattice/worklist SCOAP implementation matches an independent
  straight-line recursive reference on acyclic netlists, and is
  monotone under cone growth (a buffer spliced into a stem never makes
  any pre-existing line cheaper);
* every statically-UNTESTABLE verdict is *sound* — confirmed both by
  exhaustive simulation (zero detection mask over all input vectors)
  and by SAT (tying the line to the stuck value is provably a no-op).
"""

import random

import pytest

from repro.analyze.dataflow import NetlistFacts, netlist_facts
from repro.analyze.prove import ProofStatus, prove_equivalent
from repro.analyze.testability import INF, derive_testability, scoap_costs
from repro.circuit import GateType, LineTable, Netlist
from repro.faults.models import apply_correction, stuck_at_correction
from repro.sim import FaultSimulator, PatternSet, SimFault
from repro.sim.packing import popcount

_GATE_TYPES = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF)


def random_netlist(seed: int, num_inputs: int = 8,
                   num_gates: int = 30) -> Netlist:
    """Random acyclic combinational netlist with constants mixed in."""
    rng = random.Random(seed)
    nl = Netlist(f"rnd{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    for g in range(num_gates):
        if rng.random() < 0.05:
            nl.add_gate(f"g{g}", rng.choice((GateType.CONST0,
                                             GateType.CONST1)), [])
            continue
        gtype = rng.choice(_GATE_TYPES)
        pool = len(nl.gates)
        n_in = 1 if gtype in (GateType.NOT, GateType.BUF) else \
            rng.randint(2, min(3, pool))
        nl.add_gate(f"g{g}", gtype,
                    [rng.randrange(pool) for _ in range(n_in)])
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates
             if not fanouts[g.index] and g.gtype is not GateType.INPUT]
    nl.set_outputs(sinks or [len(nl.gates) - 1])
    return nl


# ----------------------------------------------------------------------
# reference SCOAP: straight-line recursion, no lattice machinery
# ----------------------------------------------------------------------
def _sat(x: int) -> int:
    return min(x, INF)


def _parity_cc(pairs, target: int) -> int:
    """Min total pin cost achieving XOR parity ``target`` (brute force)."""
    best = INF
    for mask in range(1 << len(pairs)):
        ones = bin(mask).count("1")
        if ones % 2 != target:
            continue
        cost = sum(pairs[p][1] if mask >> p & 1 else pairs[p][0]
                   for p in range(len(pairs)))
        best = min(best, cost)
    return _sat(best)


def reference_scoap(nl: Netlist):
    cc = {}
    for i in nl.topo_order():
        gate = nl.gates[i]
        pins = [cc[s] for s in gate.fanin]
        gt = gate.gtype
        if gt in (GateType.INPUT, GateType.DFF):
            cc[i] = (1, 1)
        elif gt is GateType.CONST0:
            cc[i] = (0, INF)
        elif gt is GateType.CONST1:
            cc[i] = (INF, 0)
        elif gt is GateType.BUF:
            cc[i] = (_sat(pins[0][0] + 1), _sat(pins[0][1] + 1))
        elif gt is GateType.NOT:
            cc[i] = (_sat(pins[0][1] + 1), _sat(pins[0][0] + 1))
        elif gt in (GateType.AND, GateType.NAND):
            one = _sat(sum(p[1] for p in pins) + 1)
            zero = _sat(min(p[0] for p in pins) + 1)
            cc[i] = (one, zero) if gt is GateType.NAND else (zero, one)
        elif gt in (GateType.OR, GateType.NOR):
            zero = _sat(sum(p[0] for p in pins) + 1)
            one = _sat(min(p[1] for p in pins) + 1)
            cc[i] = (one, zero) if gt is GateType.NOR else (zero, one)
        else:  # XOR / XNOR
            even = _sat(_parity_cc(pins, 0) + 1)
            odd = _sat(_parity_cc(pins, 1) + 1)
            cc[i] = (even, odd) if gt is GateType.XOR else (odd, even)

    noncontrolling = {GateType.AND: 1, GateType.NAND: 1,
                      GateType.OR: 0, GateType.NOR: 0}
    co = {i: INF for i in range(len(nl.gates))}
    for po in nl.outputs:
        co[po] = 0
    for i in reversed(nl.topo_order()):
        gate = nl.gates[i]
        if gate.gtype is GateType.DFF:
            continue  # same-frame observability only, like the lattice
        down = co[i]
        if down >= INF:
            continue
        for pin, src in enumerate(gate.fanin):
            side = 0
            for q, other in enumerate(gate.fanin):
                if q == pin:
                    continue
                if gate.gtype in noncontrolling:
                    side += cc[other][noncontrolling[gate.gtype]]
                elif gate.gtype in (GateType.XOR, GateType.XNOR):
                    side += min(cc[other])
            co[src] = min(co[src], _sat(down + 1 + side))
    return cc, co


@pytest.mark.parametrize("seed", range(12))
def test_scoap_matches_reference_on_acyclic(seed):
    nl = random_netlist(seed)
    costs = scoap_costs(nl)
    ref_cc, ref_co = reference_scoap(nl)
    for i in range(len(nl.gates)):
        assert (costs.cc0[i], costs.cc1[i]) == ref_cc[i], \
            f"cc mismatch at {nl.gates[i].name}"
        assert costs.co[i] == ref_co[i], \
            f"co mismatch at {nl.gates[i].name}"


@pytest.mark.parametrize("seed", range(6))
def test_scoap_monotone_under_cone_growth(seed):
    """Splicing a buffer into a stem never makes any line cheaper."""
    rng = random.Random(seed)
    nl = random_netlist(seed)
    before = scoap_costs(nl)
    n = len(nl.gates)
    live = sorted(nl.live_set())
    nl.insert_gate_on_stem(rng.choice(live), GateType.BUF)
    after = scoap_costs(nl)
    for i in range(n):
        assert after.cc0[i] >= before.cc0[i]
        assert after.cc1[i] >= before.cc1[i]
        assert after.co[i] >= before.co[i]


# ----------------------------------------------------------------------
# untestable-verdict soundness
# ----------------------------------------------------------------------
def test_untestable_sound_by_simulation_and_sat():
    """Every UNTESTABLE verdict survives exhaustive sim AND SAT."""
    total = 0
    for seed in range(20):
        nl = random_netlist(seed, num_inputs=8, num_gates=25)
        table = LineTable(nl)
        keys = netlist_facts(nl).testability().untestable_line_keys(table)
        if not keys:
            continue
        patterns = PatternSet.exhaustive(nl.num_inputs)
        fsim = FaultSimulator(nl, patterns, table)
        for line, value in sorted(keys):
            total += 1
            mask = fsim.detection_mask(SimFault(line, value))
            assert popcount(mask) == 0, (
                f"seed {seed}: {table[line].describe(nl)}/sa{value} "
                f"flagged untestable but simulation detects it")
            tied = nl.copy()
            apply_correction(tied, LineTable(tied),
                             stuck_at_correction(table, line, value))
            verdict = prove_equivalent(nl, tied)
            assert verdict.status is ProofStatus.PROVEN, (
                f"seed {seed}: {table[line].describe(nl)}/sa{value} "
                f"failed the SAT cross-check: {verdict.status}")
    # the sweep must exercise the property, not vacuously pass
    assert total > 0


def _redundant_netlist() -> Netlist:
    """out = OR(AND(a, NOT a), a): the AND output sa0 is redundant."""
    nl = Netlist("red")
    a = nl.add_input("a")
    na = nl.add_gate("na", GateType.NOT, [a])
    g = nl.add_gate("g", GateType.AND, [a, na])
    out = nl.add_gate("out", GateType.OR, [g, a])
    nl.set_outputs([out])
    return nl


def test_classic_redundancy_identified_without_search():
    nl = _redundant_netlist()
    tb = derive_testability(NetlistFacts(nl))
    g = nl.index_of("g")
    verdict = tb.untestable.get((("stem", g), 0))
    assert verdict is not None
    assert verdict.reason == "impossible-requirement"
    # and the line-key mapping feeds the PODEM pre-check
    table = LineTable(nl)
    assert (table.stem(g).index, 0) in tb.untestable_line_keys(table)


def test_dictionary_skips_statically_untestable():
    from repro.diagnose.dictionary import FaultDictionary
    from repro.tgen.randgen import random_patterns

    nl = _redundant_netlist()
    patterns = random_patterns(nl, 16, seed=3)
    with_skip = FaultDictionary(nl, patterns)
    without = FaultDictionary(nl, patterns, static_skip=False)
    assert with_skip.statically_skipped > 0
    # skipping is behaviour-preserving: untestable faults never had a
    # nonzero detection mask, so the signature tables are identical
    assert set(with_skip._signatures) == set(without._signatures)
