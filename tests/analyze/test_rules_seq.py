"""Seq rule group: planted sequential defects must come back PROVEN.

Each planted workload triggers exactly one rule and is invisible to
every earlier group: the stuck register is combinationally free, the
twin registers re-encode their next-state logic so structural hashing
cannot merge them, and the sequential constant only falls out of the
reset fixpoint.  The group is opt-in, gated on error-free earlier
groups by *position*, and a no-op on flip-flop-free netlists.
"""

import pytest

from repro.analyze import lint_netlist
from repro.circuit import GateType, Netlist


def planted_stuck() -> Netlist:
    """r never leaves reset 0 (D = AND(r, x)); m = AND(y, r) rides it."""
    n = Netlist("stuck")
    x = n.add_input("x")
    y = n.add_input("y")
    r = n.add_gate("r", GateType.DFF, [x])
    d = n.add_gate("d", GateType.AND, [r, x])
    n.gates[r].fanin = [d]
    m = n.add_gate("m", GateType.AND, [y, r])
    o = n.add_gate("o", GateType.OR, [m, y])
    n.set_outputs([o])
    n._dirty()
    return n


def planted_twin_registers() -> Netlist:
    """Two registers tracking the same bit through hash-blind logic."""
    n = Netlist("twins")
    a = n.add_input("a")
    p = n.add_gate("p", GateType.DFF, [a])
    q = n.add_gate("q", GateType.DFF, [a])
    dp = n.add_gate("dp", GateType.XOR, [a, p])
    na = n.add_gate("na", GateType.NOT, [a])
    nq = n.add_gate("nq", GateType.NOT, [q])
    t1 = n.add_gate("t1", GateType.AND, [a, nq])
    t2 = n.add_gate("t2", GateType.AND, [na, q])
    dq = n.add_gate("dq", GateType.OR, [t1, t2])
    n.gates[p].fanin = [dp]
    n.gates[q].fanin = [dq]
    op = n.add_gate("op", GateType.AND, [p, a])
    oq = n.add_gate("oq", GateType.OR, [q, a])
    n.set_outputs([op, oq])
    n._dirty()
    return n


def findings(report, rule, severity=None):
    return [d for d in report.diagnostics if d.rule == rule
            and (severity is None or str(d.severity) == severity)]


def test_planted_stuck_register_reported_proven():
    report = lint_netlist(planted_stuck(), seq=True)
    hits = findings(report, "seq-stuck-register", "warning")
    assert len(hits) == 1
    assert hits[0].gate == "r"
    assert hits[0].data["value"] == 0
    assert hits[0].data["proof"] == "reset-fixpoint"
    # the gated AND is a sequential constant beyond the comb facts
    consts = findings(report, "seq-const-line", "warning")
    assert {h.gate for h in consts} == {"d", "m"}


def test_planted_twin_registers_reported_proven():
    report = lint_netlist(planted_twin_registers(), seq=True)
    hits = findings(report, "seq-redundant-register", "warning")
    assert len(hits) == 1
    assert set(hits[0].data["registers"]) == {"p", "q"}
    # p and q track in-phase (any inverted members are helper logic)
    assert not {"p", "q"} & set(hits[0].data["inverted"])
    # the next-state cones agree too but carry no two registers
    logic = findings(report, "seq-equivalent-logic", "warning")
    assert all(set(h.data["gates"]) != {"p", "q"} for h in logic)


def test_seq_group_noop_without_flipflops(c17):
    report = lint_netlist(c17, seq=True)
    assert "seq" not in report.skipped_groups
    for rule in ("seq-stuck-register", "seq-const-line",
                 "seq-redundant-register", "seq-equivalent-logic"):
        assert findings(report, rule) == []
    assert report.seq_stats is None  # engine never constructed


def test_seq_stats_in_report(s27):
    report = lint_netlist(s27.copy(), seq=True)
    stats = report.seq_stats
    assert stats is not None and stats["k"] >= 1
    assert stats["proven"] + stats["refuted"] + stats["unknown"] \
        == stats["constant_candidates"] + stats["pair_candidates"]
    payload = report.to_dict()
    assert "time_s" not in payload["seq_stats"]
    assert "seq: k=" in report.to_text()


def test_seq_group_gated_on_errors():
    bad = planted_stuck()
    bad.outputs.append(999)  # structural ERROR: out-of-range index
    report = lint_netlist(bad, seq=True)
    assert report.errors
    assert "seq" in report.skipped_groups
    assert findings(report, "seq-stuck-register") == []


def test_unknown_group_string_rejected(s27):
    with pytest.raises(ValueError, match="unknown lint group"):
        lint_netlist(s27, groups=("structural", "sequential"))


def test_refuted_near_miss_reported_as_info():
    # p tracks a directly; q latches a sticky OR of it, so the first
    # a=1 followed by a=0 separates them at the *third* cycle: only a
    # k=3 base case can refute, and only when the single simulated
    # vector happens to miss the separating sequence.
    n = Netlist("nearmiss")
    a = n.add_input("a")
    p = n.add_gate("p", GateType.DFF, [a])
    q = n.add_gate("q", GateType.DFF, [a])
    dq = n.add_gate("dq", GateType.OR, [q, a])
    n.gates[p].fanin = [a]
    n.gates[q].fanin = [dq]
    o = n.add_gate("o", GateType.XOR, [p, q])
    n.set_outputs([o])
    n._dirty()
    from repro.analyze.seq import SeqProver

    for seed in range(10):
        result = SeqProver(n, k=3, nvectors=1, seed=seed).sweep()
        if result.refuted_pairs or result.refuted_constants:
            break
    else:
        pytest.fail("no seed produced a refutation")
    refuted = result.refuted_pairs + [
        (sig, sig, val, v) for sig, val, v in result.refuted_constants]
    assert all(v.trace is not None for *_k, v in refuted)


def test_suppression_works_for_seq_rules():
    report = lint_netlist(planted_stuck(), seq=True,
                          suppress=("seq-stuck-register",))
    assert findings(report, "seq-stuck-register") == []
    assert "seq-stuck-register" in report.suppressed
