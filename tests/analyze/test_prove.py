"""SAT-sweeping engine: every verdict pinned against exhaustive truth.

The acceptance bar for the prove layer is *zero false PROVEN verdicts*:
every proven constant and every proven equivalence class from a sweep
over a random 8-input netlist is re-checked against exhaustive
simulation of all 256 input vectors, and every REFUTED verdict's
counterexample is re-simulated to confirm it actually distinguishes.
Sweeps run with deliberately few seed vectors so candidate classes are
over-merged and the SAT path (queries, refutations, counterexample
harvesting) is genuinely exercised rather than everything being settled
by simulation.
"""

import random

import pytest

from repro.analyze.dataflow import netlist_facts
from repro.analyze.prove import (DEFAULT_CONFLICT_BUDGET, ProofStatus,
                                 Prover, prove_equivalent)
from repro.circuit import GateType, Netlist
from repro.errors import SimulationError
from repro.sim import PatternSet
from repro.sim.logicsim import simulate

_GATE_TYPES = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
               GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF)


def random_netlist(seed: int, num_inputs: int = 8,
                   num_gates: int = 30) -> Netlist:
    """Random acyclic 8-input netlist with constants sprinkled in."""
    rng = random.Random(seed)
    nl = Netlist(f"rnd{seed}")
    for i in range(num_inputs):
        nl.add_input(f"pi{i}")
    for g in range(num_gates):
        if rng.random() < 0.05:
            nl.add_gate(f"g{g}", rng.choice((GateType.CONST0,
                                             GateType.CONST1)), [])
            continue
        gtype = rng.choice(_GATE_TYPES)
        pool = len(nl.gates)
        n_in = 1 if gtype in (GateType.NOT, GateType.BUF) else \
            rng.randint(2, min(3, pool))
        nl.add_gate(f"g{g}", gtype,
                    [rng.randrange(pool) for _ in range(n_in)])
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates
             if not fanouts[g.index] and g.gtype is not GateType.INPUT]
    nl.set_outputs(sinks or [len(nl.gates) - 1])
    return nl


def exhaustive_rows(nl: Netlist):
    """Per-gate value rows over all input vectors, as Python ints."""
    patterns = PatternSet.exhaustive(nl.num_inputs)
    values = simulate(nl, patterns)
    mask = (1 << patterns.nbits) - 1
    rows = [int.from_bytes(row.tobytes(), "little") & mask
            for row in values]
    return rows, patterns.nbits


def signal_on_vector(rows, index, vector):
    """Value of signal ``index`` on the cut assignment ``vector``."""
    code = sum(bit << k for k, bit in enumerate(vector))
    return (rows[index] >> code) & 1


SEEDS = range(10)


# ----------------------------------------------------------------------
# sweep soundness: no false PROVEN, ever
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_sweep_proven_constants_hold_exhaustively(seed):
    nl = random_netlist(seed)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    prover = Prover(nl, facts=netlist_facts(nl), nvectors=2, seed=seed)
    result = prover.sweep()
    for index, proven in result.constants.items():
        assert rows[index] == (full if proven.value else 0), \
            f"false PROVEN constant on {nl.gates[index].name} " \
            f"(proof: {proven.proof})"


@pytest.mark.parametrize("seed", SEEDS)
def test_sweep_proven_classes_hold_exhaustively(seed):
    nl = random_netlist(seed)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    prover = Prover(nl, facts=netlist_facts(nl), nvectors=2, seed=seed)
    result = prover.sweep()
    assert len(result.classes) == len(result.class_proofs)
    for members, proof in zip(result.classes, result.class_proofs):
        assert proof in ("structural-hash", "sat-sweep")
        base_sig, base_phase = members[0]
        assert not base_phase
        for sig, phase in members[1:]:
            want = rows[base_sig] ^ (full if phase else 0)
            assert rows[sig] == want, \
                f"false PROVEN equivalence {nl.gates[base_sig].name} " \
                f"~ {nl.gates[sig].name} (phase={phase}, proof={proof})"


@pytest.mark.parametrize("seed", SEEDS)
def test_refuted_counterexamples_distinguish(seed):
    """Every REFUTED verdict's vector, re-simulated, shows the diff."""
    nl = random_netlist(seed)
    rows, _nbits = exhaustive_rows(nl)
    prover = Prover(nl, facts=netlist_facts(nl), nvectors=1, seed=seed)
    result = prover.sweep()
    for a, b, phase, verdict in result.refuted_pairs:
        assert verdict.status is ProofStatus.REFUTED
        cex = verdict.counterexample
        assert cex is not None and len(cex) == len(prover.cut_signals)
        va = signal_on_vector(rows, a, cex)
        vb = signal_on_vector(rows, b, cex)
        assert va != (vb ^ int(phase)), \
            "counterexample does not distinguish the refuted pair"
    for index, value, verdict in result.refuted_constants:
        cex = verdict.counterexample
        assert cex is not None
        assert signal_on_vector(rows, index, cex) != value


@pytest.mark.parametrize("seed", SEEDS)
def test_harvested_counterexamples_are_exported(seed):
    nl = random_netlist(seed)
    prover = Prover(nl, facts=netlist_facts(nl), nvectors=1, seed=seed)
    result = prover.sweep()
    assert result.stats.counterexamples == len(prover.counterexamples)
    patterns = prover.distinguishing_patterns()
    assert patterns.nbits == len(prover.counterexamples)
    assert patterns.num_inputs == len(prover.cut_signals)
    for k, cex in enumerate(prover.counterexamples):
        assert [int(v) for v in patterns.vector(k)] == list(cex)


def test_sat_path_is_actually_exercised():
    """With one seed vector, at least one sweep must hit the solver and
    harvest counterexamples — otherwise the suite above only ever tests
    the simulation shortcut."""
    queried = harvested = 0
    for seed in SEEDS:
        nl = random_netlist(seed)
        prover = Prover(nl, facts=netlist_facts(nl), nvectors=1,
                        seed=seed)
        stats = prover.sweep().stats
        queried += stats.queries
        harvested += stats.counterexamples
    assert queried > 0
    assert harvested > 0


# ----------------------------------------------------------------------
# direct queries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_prove_equal_matches_exhaustive_truth(seed):
    nl = random_netlist(seed, num_gates=16)
    rows, nbits = exhaustive_rows(nl)
    full = (1 << nbits) - 1
    prover = Prover(nl, nvectors=4, seed=seed)
    rng = random.Random(seed)
    signals = [g.index for g in nl.gates]
    for _ in range(25):
        a, b = rng.choice(signals), rng.choice(signals)
        phase = rng.random() < 0.5
        verdict = prover.prove_equal(a, b, phase)
        truly_equal = rows[a] == (rows[b] ^ (full if phase else 0))
        if verdict.status is ProofStatus.PROVEN:
            assert truly_equal
        elif verdict.status is ProofStatus.REFUTED:
            assert not truly_equal
        else:
            pytest.fail("default budget exhausted on a 16-gate netlist")


@pytest.mark.parametrize("seed", range(4))
def test_prove_pin_redundant_matches_exhaustive_truth(seed):
    from repro.circuit.gatetypes import MULTI_INPUT_TYPES
    nl = random_netlist(seed, num_gates=16)
    rows, _nbits = exhaustive_rows(nl)
    prover = Prover(nl, nvectors=4, seed=seed)
    checked = 0
    for gate in nl.gates:
        if gate.gtype not in MULTI_INPUT_TYPES or len(gate.fanin) < 2:
            continue
        for pin in range(len(gate.fanin)):
            verdict = prover.prove_pin_redundant(gate.index, pin)
            kept = [s for p, s in enumerate(gate.fanin) if p != pin]
            # oracle: recompute the reduced function from the rows
            from repro.circuit.gatetypes import eval_scalar
            truly = True
            for code in range(1 << nl.num_inputs):
                ins = [(rows[s] >> code) & 1 for s in kept]
                if eval_scalar(gate.gtype, ins) != \
                        (rows[gate.index] >> code) & 1:
                    truly = False
                    break
            if verdict.status is ProofStatus.PROVEN:
                assert truly, f"false redundant pin on {gate.name}"
            elif verdict.status is ProofStatus.REFUTED:
                assert not truly
            checked += 1
    assert checked > 0


def test_prove_pin_redundant_rejects_bad_targets():
    nl = Netlist("t")
    a = nl.add_input("a")
    buf = nl.add_gate("b", GateType.BUF, [a])
    nl.set_outputs([buf])
    prover = Prover(nl)
    with pytest.raises(SimulationError):
        prover.prove_pin_redundant(buf, 0)


def test_unknown_verdict_on_exhausted_budget():
    """A conflict budget of 1 cannot prove a parity equivalence; the
    verdict must be UNKNOWN with the spend recorded — never PROVEN."""
    nl = Netlist("parity")
    ins = [nl.add_input(f"i{k}") for k in range(6)]
    left = nl.add_gate("left", GateType.XOR, ins)
    half1 = nl.add_gate("h1", GateType.XOR, ins[:3])
    half2 = nl.add_gate("h2", GateType.XOR, ins[3:])
    right = nl.add_gate("right", GateType.XOR, [half1, half2])
    nl.set_outputs([left, right])
    prover = Prover(nl, conflict_budget=1, nvectors=64, seed=0)
    verdict = prover.prove_equal(left, right)
    assert verdict.status is ProofStatus.UNKNOWN
    assert verdict.conflicts >= 1
    assert prover.stats.unknown == 1
    # a real budget settles it
    prover.conflict_budget = DEFAULT_CONFLICT_BUDGET
    assert prover.prove_equal(left, right).status is ProofStatus.PROVEN


# ----------------------------------------------------------------------
# netlist-vs-netlist equivalence
# ----------------------------------------------------------------------
def test_prove_equivalent_proves_restructured_circuit(c17):
    other = c17.copy("same")
    verdict = prove_equivalent(c17, other)
    assert verdict.status is ProofStatus.PROVEN


def test_prove_equivalent_counterexample_resimulates(c17):
    other = c17.copy("mut")
    other.set_gate_type(other.index_of("22"), GateType.AND)
    verdict = prove_equivalent(c17, other)
    assert verdict.status is ProofStatus.REFUTED
    vector = list(verdict.counterexample)
    import numpy as np
    from repro.sim import output_rows
    from repro.sim.packing import pack_bits
    probe = PatternSet(pack_bits(
        np.asarray([vector], dtype=np.uint8).T), 1)
    a = output_rows(c17, simulate(c17, probe))
    b = output_rows(other, simulate(other, probe))
    assert (a[:, 0] & np.uint64(1)).tolist() \
        != (b[:, 0] & np.uint64(1)).tolist()


def test_prove_equivalent_de_morgan():
    nl = Netlist("a")
    x = nl.add_input("x")
    y = nl.add_input("y")
    o = nl.add_gate("o", GateType.AND, [x, y])
    nl.set_outputs([o])
    other = Netlist("b")
    x2 = other.add_input("x")
    y2 = other.add_input("y")
    nx = other.add_gate("nx", GateType.NOT, [x2])
    ny = other.add_gate("ny", GateType.NOT, [y2])
    o2 = other.add_gate("o", GateType.NOR, [nx, ny])
    other.set_outputs([o2])
    assert prove_equivalent(nl, other).status is ProofStatus.PROVEN


# ----------------------------------------------------------------------
# caching on the facts bundle
# ----------------------------------------------------------------------
def test_facts_prover_cached_and_invalidated(c17):
    nl = c17.copy("c17m")   # the session fixture must not be mutated
    facts = netlist_facts(nl)
    prover = facts.prover()
    assert facts.prover() is prover            # cached
    facts.prover(conflict_budget=7)
    assert prover.conflict_budget == 7         # budget updatable
    gate = nl.index_of("22")
    nl.set_gate_type(gate, GateType.AND)       # journalled mutation
    refreshed = netlist_facts(nl).prover()
    # The retirable CNF survives the edit (stale clauses retired by
    # activation units) and answers for the *edited* function.
    scratch = Prover(nl, facts=netlist_facts(nl))
    for signal in (gate, nl.outputs[0]):
        for value in (0, 1):
            assert (refreshed.prove_constant(signal, value).status
                    is scratch.prove_constant(signal, value).status)
    assert (refreshed.sweep().classes
            == Prover(nl, facts=netlist_facts(nl)).sweep().classes)
    nl._dirty()                                # full invalidation
    assert netlist_facts(nl).prover() is not refreshed


def test_verdict_and_stats_serialize():
    nl = random_netlist(0, num_gates=12)
    prover = Prover(nl, facts=netlist_facts(nl), nvectors=2, seed=0)
    prover.sweep()
    snapshot = prover.stats_snapshot()
    for key in ("queries", "proven", "refuted", "unknown", "conflicts",
                "structural_merges", "counterexamples", "solver"):
        assert key in snapshot
    for key in ("decisions", "propagations", "conflicts", "restarts"):
        assert key in snapshot["solver"]
    verdict = prover.prove_constant(nl.gates[-1].index, 0)
    d = verdict.to_dict()
    assert d["status"] in ("proven", "refuted", "unknown")
    if verdict.counterexample is not None:
        assert d["counterexample"] == list(verdict.counterexample)
