"""Sequential engine: fixpoint and k-induction pinned to exhaustion.

The acceptance bar mirrors ``test_prove.py``: *zero false PROVEN
verdicts*.  Every sequential constant and every proven correspondence
class from random small sequential netlists is re-checked against an
exhaustive oracle — breadth-first reachability from reset crossed with
every input vector, which enumerates exactly the valuations the machine
can ever exhibit.  Every REFUTED verdict's trace is replayed cycle by
cycle to confirm it genuinely violates the candidate at the reported
frame.  Sweeps run with ``nvectors=1`` so candidate classes are wildly
over-merged and the SAT base/step path does the real work.
"""

import pytest

from repro.analyze.dataflow import netlist_facts
from repro.analyze.prove import ProofStatus
from repro.analyze.seq import (SeqProver, replay_trace, reset_fixpoint,
                               seq_masked_signals)
from repro.circuit import GateType, Netlist, eval_scalar, generators


def small_seq(seed: int) -> Netlist:
    return generators.random_sequential(4, 30, 3, 3, seed=seed)


def reachable_rows(netlist: Netlist, initial_state=0):
    """Every valuation the machine can exhibit at any cycle.

    BFS over the reachable state set from reset; for each reachable
    state, evaluate under every input vector.  The union is exactly the
    set of per-cycle valuations, so "constant/equivalent at every cycle
    from reset" means "constant/equivalent on every returned row".
    With an X reset every completion of the initial state is a root.
    """
    from itertools import product

    from repro.circuit.sequential import normalize_initial_state

    gates = netlist.gates
    order = list(netlist.topo_order())
    dffs = netlist.dffs()
    pi_pos = {pi: pos for pos, pi in enumerate(netlist.inputs)}
    init = normalize_initial_state(netlist, initial_state)
    free = [dff for dff in dffs if init[dff] is None]
    roots = set()
    for bits in product((0, 1), repeat=len(free)):
        state = dict(init)
        state.update(zip(free, bits))
        roots.add(tuple(state[dff] for dff in dffs))
    seen = set(roots)
    stack = list(roots)
    rows = []
    while stack:
        state = dict(zip(dffs, stack.pop()))
        for vec in range(1 << netlist.num_inputs):
            values = [0] * len(gates)
            for idx in order:
                gate = gates[idx]
                if gate.gtype is GateType.INPUT:
                    values[idx] = (vec >> pi_pos[idx]) & 1
                elif gate.gtype is GateType.DFF:
                    values[idx] = state[idx]
                elif gate.gtype is GateType.CONST0:
                    values[idx] = 0
                elif gate.gtype is GateType.CONST1:
                    values[idx] = 1
                else:
                    values[idx] = eval_scalar(
                        gate.gtype, [values[s] for s in gate.fanin])
            rows.append(values)
            nxt = tuple(values[gates[d].fanin[0]] for d in dffs)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return rows


def planted_stuck_register() -> Netlist:
    """One register that can never leave reset 0 (D = AND(r, x))."""
    nl = Netlist("stuck1")
    x = nl.add_input("x")
    y = nl.add_input("y")
    r = nl.add_gate("r", GateType.DFF, [x])
    d = nl.add_gate("d", GateType.AND, [r, x])
    nl.gates[r].fanin = [d]
    t = nl.add_gate("t", GateType.XOR, [r, y])
    nl.set_outputs([t])
    nl._dirty()
    return nl


# ----------------------------------------------------------------------
# reset fixpoint
# ----------------------------------------------------------------------
def test_fixpoint_finds_planted_stuck_register():
    nl = planted_stuck_register()
    fx = reset_fixpoint(nl, 0)
    r = nl.index_of("r")
    assert fx.stuck_registers == {r: 0}
    assert fx.constants[r] == 0
    assert fx.constants[nl.index_of("d")] == 0
    # the XOR output depends on a free input: not constant
    assert nl.index_of("t") not in fx.constants
    assert fx.iterations <= len(nl.dffs()) + 1


def test_fixpoint_respects_reset_polarity():
    # D = OR(r, x): from reset 1 the register is stuck at 1, from
    # reset 0 it can be set and never cleared — not stuck.
    nl = Netlist("setonly")
    x = nl.add_input("x")
    r = nl.add_gate("r", GateType.DFF, [x])
    d = nl.add_gate("d", GateType.OR, [r, x])
    nl.gates[r].fanin = [d]
    nl.set_outputs([r])
    nl._dirty()
    assert reset_fixpoint(nl, 1).stuck_registers == {r: 1}
    assert reset_fixpoint(nl, 0).stuck_registers == {}
    assert reset_fixpoint(nl, None).stuck_registers == {}


@pytest.mark.parametrize("seed", range(6))
def test_fixpoint_sound_on_random_netlists(seed):
    nl = small_seq(seed)
    fx = reset_fixpoint(nl, 0)
    assert fx.iterations <= len(nl.dffs()) + 1
    rows = reachable_rows(nl, 0)
    for signal, value in fx.constants.items():
        assert all(row[signal] == value for row in rows), \
            f"fixpoint claims {nl.gates[signal].name} == {value}"


# ----------------------------------------------------------------------
# k-induction: proven verdicts vs the exhaustive oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_proven_verdicts_hold_exhaustively(seed):
    nl = small_seq(seed)
    result = SeqProver(nl, k=2, nvectors=1, seed=seed).sweep()
    rows = reachable_rows(nl, 0)
    for signal, const in result.constants.items():
        assert all(row[signal] == const.value for row in rows), \
            (nl.gates[signal].name, const.proof)
    for group in result.classes:
        (rep, rep_phase), rest = group[0], group[1:]
        assert not rep_phase
        for member, phase in rest:
            assert all((row[rep] ^ row[member] ^ phase) == 0
                       for row in rows), \
                (nl.gates[rep].name, nl.gates[member].name, phase)


def test_sweep_accounting_and_cache():
    nl = small_seq(1)
    prover = SeqProver(nl, k=2, nvectors=1, seed=1)
    result = prover.sweep()
    stats = result.stats
    assert stats.proven + stats.refuted + stats.unknown \
        == stats.constant_candidates + stats.pair_candidates
    assert prover.sweep() is result  # cached
    assert prover.sweep(force=True) is not result


def test_bad_induction_depth_rejected():
    with pytest.raises(ValueError, match="k must be >= 1"):
        SeqProver(planted_stuck_register(), k=0)


# ----------------------------------------------------------------------
# refuted verdicts: every trace replays to a genuine violation
# ----------------------------------------------------------------------
def assert_trace_violates(nl, result):
    """Replay every REFUTED trace and check the property fails there."""
    replayed = 0
    for signal, value, verdict in result.refuted_constants:
        assert verdict.status is ProofStatus.REFUTED
        frames = replay_trace(nl, verdict.trace)
        assert frames[verdict.trace.frame][signal] == 1 - value
        replayed += 1
    for a, b, phase, verdict in result.refuted_pairs:
        frames = replay_trace(nl, verdict.trace)
        row = frames[verdict.trace.frame]
        assert row[a] ^ row[b] ^ phase == 1
        replayed += 1
    return replayed


def test_refuted_traces_replay_from_constant_reset():
    replayed = 0
    for seed in range(8):
        nl = small_seq(seed)
        result = SeqProver(nl, k=2, nvectors=1, seed=seed).sweep()
        replayed += assert_trace_violates(nl, result)
    # nvectors=1 over-merges enough that refutations must occur
    assert replayed > 0


def test_refuted_traces_replay_from_x_reset():
    # X reset exposes @init inputs; the decoded trace must resolve
    # them (exercises UnrollMap.init_rows decoding) and still replay.
    replayed = 0
    for seed in range(8):
        nl = small_seq(seed)
        result = SeqProver(nl, k=2, nvectors=1, seed=seed,
                           initial_state=None).sweep()
        for _sig, _val, verdict in result.refuted_constants:
            assert len(verdict.trace.initial) == len(nl.dffs())
            assert all(v in (0, 1) for _, v in verdict.trace.initial)
        replayed += assert_trace_violates(nl, result)
    assert replayed > 0


# ----------------------------------------------------------------------
# facts-bundle caching
# ----------------------------------------------------------------------
def test_facts_cache_and_invalidation(s27):
    nl = s27.copy()
    facts = netlist_facts(nl)
    fx = facts.reset_fixpoint(0)
    assert facts.reset_fixpoint(0) is fx
    assert facts.reset_fixpoint(1) is not fx  # keyed per reset state
    prover = facts.seq_prover(nvectors=8)
    assert facts.seq_prover() is prover
    facts.seq_prover(conflict_budget=123)
    assert prover.conflict_budget == 123
    nl.set_gate_type(nl.index_of("G10"), GateType.NAND)  # journalled
    fresh = netlist_facts(nl)
    assert fresh is not facts
    assert fresh.seq_prover(nvectors=8) is not prover  # never warmed


# ----------------------------------------------------------------------
# the sequential pre-screen core
# ----------------------------------------------------------------------
def test_seq_masked_signals_planted():
    # g = AND(x, y) only reaches the output through m = AND(g, r)
    # where r is stuck at 0 from reset: g (and its private input y)
    # are provably masked behind the dominator m.  m itself is NOT
    # masked — a fault on m sits past the blocking side input and
    # reaches the OR directly.
    nl = Netlist("masked")
    h = nl.add_input("h")
    x = nl.add_input("x")
    y = nl.add_input("y")
    r = nl.add_gate("r", GateType.DFF, [x])
    d = nl.add_gate("d", GateType.AND, [r, x])
    nl.gates[r].fanin = [d]
    g = nl.add_gate("g", GateType.AND, [x, y])
    m = nl.add_gate("m", GateType.AND, [g, r])
    hbuf = nl.add_gate("hbuf", GateType.BUF, [h])
    out = nl.add_gate("out", GateType.OR, [hbuf, m])
    nl.set_outputs([out])
    nl._dirty()
    masked = seq_masked_signals(nl, 0)
    assert g in masked and y in masked
    assert m not in masked
    assert hbuf not in masked and out not in masked
    # from an X reset nothing is provably stuck, so the ODC proof
    # disappears and only genuinely unobservable logic may stay masked
    assert g not in seq_masked_signals(nl, None)
