"""CNF builders: gate encodings and cardinality constraints."""

import itertools

import pytest

from repro.circuit import GateType
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver
from repro.circuit.gatetypes import eval_scalar

CASES = ([(g, 1) for g in (GateType.BUF, GateType.NOT)]
         + [(g, n) for g in (GateType.AND, GateType.NAND, GateType.OR,
                             GateType.NOR, GateType.XOR, GateType.XNOR)
            for n in (2, 3)])


@pytest.mark.parametrize("gtype,n_inputs", CASES,
                         ids=[f"{g.name}{n}" for g, n in CASES])
def test_gate_encoding_matches_semantics(gtype, n_inputs):
    for combo in itertools.product([False, True], repeat=n_inputs):
        builder = CnfBuilder(SatSolver())
        ins = [builder.new_var() for _ in range(n_inputs)]
        out = builder.new_var()
        builder.encode_gate(gtype, out, ins)
        for var, value in zip(ins, combo):
            builder.constant(var, value)
        assert builder.solver.solve() is True
        expected = bool(eval_scalar(gtype, [int(v) for v in combo]))
        assert builder.solver.model()[out] == expected, (gtype, combo)


def test_constants_and_equal():
    builder = CnfBuilder()
    a, b = builder.new_var(), builder.new_var()
    builder.equal(a, b)
    builder.constant(a, True)
    assert builder.solver.solve() is True
    assert builder.solver.model()[b] is True


def test_mux_encoding():
    for sel_v, t_v, f_v in itertools.product([False, True], repeat=3):
        builder = CnfBuilder()
        sel, t, f, out = (builder.new_var() for _ in range(4))
        builder.mux(out, sel, t, f)
        builder.constant(sel, sel_v)
        builder.constant(t, t_v)
        builder.constant(f, f_v)
        assert builder.solver.solve() is True
        assert builder.solver.model()[out] == (t_v if sel_v else f_v)


@pytest.mark.parametrize("n,k", [(4, 0), (4, 1), (4, 2), (5, 3), (3, 3)])
def test_at_most_k_exact_boundary(n, k):
    """All assignments with <= k true are SAT, any k+1 subset is not."""
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(n)]
    builder.at_most_k(variables, k)
    solver = builder.solver
    # forcing exactly k true is satisfiable (when k <= n)
    if k <= n:
        assumptions = [variables[i] for i in range(k)] + \
            [-variables[i] for i in range(k, n)]
        assert solver.solve(assumptions=assumptions) is True
    # forcing k+1 true must fail
    if k + 1 <= n:
        assumptions = [variables[i] for i in range(k + 1)]
        assert solver.solve(assumptions=assumptions) is False


def test_at_least_one():
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(3)]
    builder.at_least_one(variables)
    solver = builder.solver
    assert solver.solve(assumptions=[-v for v in variables]) is False
    assert solver.solve(assumptions=[-variables[0],
                                     -variables[1]]) is True


# ----------------------------------------------------------------------
# at_most_k edge cases: exhaustive over every assignment for small n, k
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", range(5))
@pytest.mark.parametrize("k", range(-1, 6))
def test_at_most_k_exhaustive_small(n, k):
    """For every assignment of n variables, SAT under assumptions iff
    the assignment sets at most k of them true — including k=0 (all
    forced false), k>=n (tautology) and k<0 (whole formula UNSAT)."""
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(n)]
    builder.at_most_k(variables, k)
    solver = builder.solver
    for bits in itertools.product([False, True], repeat=n):
        assumptions = [v if b else -v for v, b in zip(variables, bits)]
        expected = sum(bits) <= k
        assert solver.solve(assumptions=assumptions) is expected, \
            (n, k, bits)


def test_at_most_k_zero_adds_only_unit_clauses():
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(4)]
    before = builder.solver.num_vars
    builder.at_most_k(variables, 0)
    assert builder.solver.num_vars == before   # no counter registers
    assert builder.solver.solve() is True
    assert all(builder.solver.model()[v] is False for v in variables)


def test_at_most_k_tautology_adds_nothing():
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(3)]
    builder.at_most_k(variables, 3)
    builder.at_most_k(variables, 7)
    assert not builder.solver.clauses
    assert builder.solver.solve(assumptions=variables) is True


def test_at_most_k_negative_is_unsat():
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(3)]
    builder.at_most_k(variables, -1)
    assert builder.solver.solve() is False


def test_at_most_k_empty_variable_list():
    builder = CnfBuilder()
    builder.at_most_k([], 0)     # 0 <= 0: fine
    assert builder.solver.solve() is True
    builder.at_most_k([], -1)    # 0 <= -1: impossible
    assert builder.solver.solve() is False
