"""CNF builders: gate encodings and cardinality constraints."""

import itertools

import pytest

from repro.circuit import GateType
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver
from repro.circuit.gatetypes import eval_scalar

CASES = ([(g, 1) for g in (GateType.BUF, GateType.NOT)]
         + [(g, n) for g in (GateType.AND, GateType.NAND, GateType.OR,
                             GateType.NOR, GateType.XOR, GateType.XNOR)
            for n in (2, 3)])


@pytest.mark.parametrize("gtype,n_inputs", CASES,
                         ids=[f"{g.name}{n}" for g, n in CASES])
def test_gate_encoding_matches_semantics(gtype, n_inputs):
    for combo in itertools.product([False, True], repeat=n_inputs):
        builder = CnfBuilder(SatSolver())
        ins = [builder.new_var() for _ in range(n_inputs)]
        out = builder.new_var()
        builder.encode_gate(gtype, out, ins)
        for var, value in zip(ins, combo):
            builder.constant(var, value)
        assert builder.solver.solve() is True
        expected = bool(eval_scalar(gtype, [int(v) for v in combo]))
        assert builder.solver.model()[out] == expected, (gtype, combo)


def test_constants_and_equal():
    builder = CnfBuilder()
    a, b = builder.new_var(), builder.new_var()
    builder.equal(a, b)
    builder.constant(a, True)
    assert builder.solver.solve() is True
    assert builder.solver.model()[b] is True


def test_mux_encoding():
    for sel_v, t_v, f_v in itertools.product([False, True], repeat=3):
        builder = CnfBuilder()
        sel, t, f, out = (builder.new_var() for _ in range(4))
        builder.mux(out, sel, t, f)
        builder.constant(sel, sel_v)
        builder.constant(t, t_v)
        builder.constant(f, f_v)
        assert builder.solver.solve() is True
        assert builder.solver.model()[out] == (t_v if sel_v else f_v)


@pytest.mark.parametrize("n,k", [(4, 0), (4, 1), (4, 2), (5, 3), (3, 3)])
def test_at_most_k_exact_boundary(n, k):
    """All assignments with <= k true are SAT, any k+1 subset is not."""
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(n)]
    builder.at_most_k(variables, k)
    solver = builder.solver
    # forcing exactly k true is satisfiable (when k <= n)
    if k <= n:
        assumptions = [variables[i] for i in range(k)] + \
            [-variables[i] for i in range(k, n)]
        assert solver.solve(assumptions=assumptions) is True
    # forcing k+1 true must fail
    if k + 1 <= n:
        assumptions = [variables[i] for i in range(k + 1)]
        assert solver.solve(assumptions=assumptions) is False


def test_at_least_one():
    builder = CnfBuilder()
    variables = [builder.new_var() for _ in range(3)]
    builder.at_least_one(variables)
    solver = builder.solver
    assert solver.solve(assumptions=[-v for v in variables]) is False
    assert solver.solve(assumptions=[-variables[0],
                                     -variables[1]]) is True
