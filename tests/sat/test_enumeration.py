"""SAT model enumeration completeness on known formulas."""

import itertools

from repro.sat.solver import SatSolver


def count_models(num_vars, clauses):
    solver = SatSolver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    count = 0
    while solver.solve() is True:
        model = solver.model()
        count += 1
        solver.block([v if model.get(v, True) else -v
                      for v in range(1, num_vars + 1)])
        if count > 2 ** num_vars:
            raise AssertionError("enumeration does not terminate")
    return count


def brute_count(num_vars, clauses):
    total = 0
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in cl)
               for cl in clauses):
            total += 1
    return total


def test_enumeration_counts_match_brute_force():
    cases = [
        (3, [[1, 2], [-2, 3]]),
        (4, [[1], [-1, 2, 3], [-3, -4]]),
        (3, [[1, 2, 3]]),
        (2, [[1], [-1]]),           # UNSAT: zero models
        (3, []),                    # free: 8 models
    ]
    for num_vars, clauses in cases:
        assert count_models(num_vars, clauses) \
            == brute_count(num_vars, clauses), clauses
