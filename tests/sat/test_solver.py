"""CDCL solver: correctness against brute force, API behaviour."""

import itertools
import random

import pytest

from repro.sat.solver import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in cl)
               for cl in clauses):
            return True
    return False


def test_trivial_cases():
    solver = SatSolver()
    assert solver.solve() is True          # empty formula
    solver.add_clause([1])
    assert solver.solve() is True
    assert solver.model()[1] is True
    solver.add_clause([-1])
    assert solver.solve() is False         # unit conflict


def test_empty_clause_is_unsat():
    solver = SatSolver()
    solver.add_clause([])
    assert solver.solve() is False


def test_tautologies_are_dropped():
    solver = SatSolver()
    solver.add_clause([1, -1])
    assert solver.solve() is True


def test_zero_literal_rejected():
    solver = SatSolver()
    with pytest.raises(ValueError):
        solver.add_clause([0, 1])


def test_pigeonhole_3_into_2_unsat():
    """PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT instance."""
    solver = SatSolver()
    def var(p, h):
        return p * 2 + h + 1
    for p in range(3):
        solver.add_clause([var(p, 0), var(p, 1)])
    for h in range(2):
        for p1 in range(3):
            for p2 in range(p1 + 1, 3):
                solver.add_clause([-var(p1, h), -var(p2, h)])
    assert solver.solve() is False
    assert solver.stats.conflicts > 0


def test_assumptions():
    solver = SatSolver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1]) is True
    assert solver.model()[2] is True
    solver.add_clause([-2])
    assert solver.solve(assumptions=[-1]) is False
    assert solver.solve() is True  # still SAT without the assumption


def test_enumeration_with_blocking():
    solver = SatSolver()
    solver.add_clause([1, 2])
    models = set()
    while solver.solve() is True:
        model = solver.model()
        bits = tuple(bool(model.get(v)) for v in (1, 2))
        models.add(bits)
        solver.block([v if model.get(v) else -v for v in (1, 2)])
    assert models == {(True, False), (False, True), (True, True)}


@pytest.mark.parametrize("seed", range(6))
def test_random_instances_match_brute_force(seed):
    rng = random.Random(seed)
    for _ in range(60):
        num_vars = rng.randint(3, 10)
        num_clauses = rng.randint(2, num_vars * 4)
        clauses = [[rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))]
                   for _ in range(num_clauses)]
        solver = SatSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        got = solver.solve()
        assert got == brute_force_sat(num_vars, clauses), clauses
        if got:
            model = solver.model()
            for clause in clauses:
                assert any(model.get(abs(l), l > 0) == (l > 0)
                           for l in clause)


def test_conflict_limit_returns_none():
    """A hard UNSAT instance with a 1-conflict budget must give up."""
    solver = SatSolver()
    def var(p, h):
        return p * 3 + h + 1
    for p in range(4):
        solver.add_clause([var(p, h) for h in range(3)])
    for h in range(3):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                solver.add_clause([-var(p1, h), -var(p2, h)])
    assert solver.solve(conflict_limit=1) is None
    assert solver.solve() is False  # and solvable without the limit


# ----------------------------------------------------------------------
# Luby restarts
# ----------------------------------------------------------------------
def test_luby_sequence_values():
    from repro.sat.solver import luby
    want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
    assert [luby(i) for i in range(1, len(want) + 1)] == want
    with pytest.raises(ValueError):
        luby(0)


def pigeonhole(solver, pigeons=5, holes=4):
    def var(p, h):
        return p * holes + h + 1
    for p in range(pigeons):
        solver.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var(p1, h), -var(p2, h)])


def test_restarts_fire_and_preserve_unsat():
    solver = SatSolver(restart_base=2)
    pigeonhole(solver)
    assert solver.solve() is False
    assert solver.stats.restarts > 0


def test_restarts_disabled_with_none():
    solver = SatSolver(restart_base=None)
    pigeonhole(solver)
    assert solver.solve() is False
    assert solver.stats.restarts == 0


@pytest.mark.parametrize("seed", range(3))
def test_restart_correctness_vs_brute_force(seed):
    """Aggressive restarts must not change any answer."""
    rng = random.Random(seed)
    for _ in range(40):
        num_vars = rng.randint(3, 10)
        clauses = [[rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))]
                   for _ in range(rng.randint(2, num_vars * 4))]
        solver = SatSolver(num_vars, restart_base=1)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() == brute_force_sat(num_vars, clauses), \
            clauses


def test_solver_stats_to_dict():
    solver = SatSolver(restart_base=2)
    pigeonhole(solver)
    solver.solve()
    snapshot = solver.stats.to_dict()
    assert set(snapshot) == {"decisions", "propagations", "conflicts",
                             "learned", "restarts"}
    assert snapshot["conflicts"] > 0
    assert snapshot["restarts"] == solver.stats.restarts


def test_restarts_respect_assumption_level():
    """Restarting must never pop assumptions: SAT answers under
    assumptions stay consistent with them."""
    solver = SatSolver(restart_base=1)
    rng = random.Random(7)
    num_vars = 8
    for _ in range(20):
        solver.add_clause([rng.choice([-1, 1]) * rng.randint(1, num_vars)
                           for _ in range(3)])
    assumptions = [1, -2]
    if solver.solve(assumptions=assumptions) is True:
        model = solver.model()
        assert model[1] is True
        assert model[2] is False
