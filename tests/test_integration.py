"""Cross-module integration: the full flows a user would run."""

import pytest

from repro import (DiagnosisConfig, IncrementalDiagnoser, LineTable,
                   Mode, collapsed_faults, full_scan,
                   inject_stuck_at_faults, matches_truth,
                   observable_design_error_workload, optimize_area,
                   rectifies)
from repro.circuit import generators
from repro.diagnose.verify import exhaustively_equivalent
from repro.tgen import diagnosis_vectors, random_patterns


def test_full_stuck_at_pipeline():
    """generate -> optimize -> inject -> ATPG+random vectors ->
    exact diagnosis -> verify returned netlists."""
    circuit = optimize_area(generators.alu(4))
    patterns = diagnosis_vectors(circuit, num_random=512, seed=0)
    workload = inject_stuck_at_faults(circuit, 2, seed=4)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, time_budget=60.0)
    result = IncrementalDiagnoser(workload.impl, circuit, patterns,
                                  config).run()
    assert result.found
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)
    assert any(matches_truth(s, workload.truth)
               for s in result.solutions) or result.min_size < 2


def test_full_scan_sequential_pipeline():
    sequential = generators.random_sequential(6, 120, 6, 4, seed=3)
    scan_model = optimize_area(full_scan(sequential)[0], name="scan")
    patterns = random_patterns(scan_model, 768, seed=2)
    # random faults can land on unobservable lines; find an observable
    # workload (the harness's own retry approach)
    from repro.sim import count_failing, output_rows, simulate
    spec_out = output_rows(scan_model, simulate(scan_model, patterns))
    workload = None
    for seed in range(1, 20):
        candidate = inject_stuck_at_faults(scan_model, 2, seed=seed)
        impl_out = output_rows(candidate.impl,
                               simulate(candidate.impl, patterns))
        if count_failing(spec_out, impl_out, patterns.nbits) > 0:
            workload = candidate
            break
    assert workload is not None
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, time_budget=60.0)
    result = IncrementalDiagnoser(workload.impl, scan_model, patterns,
                                  config).run()
    assert result.found
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)


def test_dedc_pipeline_repairs_design_for_real():
    """The repaired netlist must be equivalent on *fresh* vectors, not
    just the diagnosis set — and exhaustively so for this small case."""
    spec = generators.ripple_carry_adder(3)  # 7 inputs: exhaustible
    patterns = random_patterns(spec, 512, seed=1)
    workload = observable_design_error_workload(spec, 2, patterns,
                                                seed=6)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=3, time_budget=90.0)
    result = IncrementalDiagnoser(spec, workload.impl, patterns,
                                  config).run()
    assert result.found
    repaired = result.solutions[0].netlist
    fresh = random_patterns(spec, 1024, seed=999)
    assert rectifies(spec, repaired, fresh) or \
        not exhaustively_equivalent(spec, repaired)
    # vector-set equivalence is the paper's criterion; exhaustive
    # equivalence usually follows on a circuit this small:
    if not exhaustively_equivalent(spec, repaired):
        pytest.xfail("vector-equivalent repair that is not exhaustively "
                     "equivalent (possible but rare)")


def test_collapsed_faults_speed_up_atpg_consistency():
    circuit = generators.comparator(4)
    table = LineTable(circuit)
    collapsed = collapsed_faults(circuit, table)
    patterns = diagnosis_vectors(circuit, num_random=256, seed=0)
    from repro.sim import FaultSimulator
    fsim = FaultSimulator(circuit, patterns, table)
    assert fsim.coverage(collapsed) > 0.9
