"""Stuck-at fault equivalence collapsing.

The semantic check: every pair of faults placed in the same equivalence
class must have identical detection masks on random vectors (structural
equivalence implies functional indistinguishability).
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.circuit import LineTable, generators
from repro.faults.collapse import (collapse_ratio, collapsed_faults,
                                   equivalence_classes)
from repro.sim import FaultSimulator, PatternSet, SimFault, all_faults


@pytest.mark.parametrize("name", ["c17", "r432"])
def test_classes_are_functionally_equivalent(name):
    circuit = generators.by_name(name, scale=0.25)
    table = LineTable(circuit)
    mapping = equivalence_classes(circuit, table)
    patterns = PatternSet.random(circuit.num_inputs, 256, seed=3)
    fsim = FaultSimulator(circuit, patterns, table)
    by_class = defaultdict(list)
    for fault_key, root in mapping.items():
        by_class[root].append(fault_key)
    for root, members in by_class.items():
        if len(members) == 1:
            continue
        masks = [fsim.detection_mask(SimFault(line, value))
                 for line, value in members]
        for mask in masks[1:]:
            assert np.array_equal(mask, masks[0]), (root, members)


def test_collapsing_shrinks_fault_list(c17):
    table = LineTable(c17)
    collapsed = collapsed_faults(c17, table)
    assert len(collapsed) < len(all_faults(table))
    # c17's classic collapsed fault count is 22
    assert len(collapsed) == 22


def test_collapse_ratio_bounds(alu4):
    ratio = collapse_ratio(alu4)
    assert 0.0 < ratio < 1.0


def test_every_fault_has_a_class(c17):
    table = LineTable(c17)
    mapping = equivalence_classes(c17, table)
    assert len(mapping) == 2 * len(table)
    roots = set(mapping.values())
    for root in roots:
        assert mapping[root] == root  # roots map to themselves
