"""Bridging fault model and diagnosis (the §4.1 extension)."""

import pytest

from repro.circuit import GateType, Netlist, generators
from repro.errors import InjectionError
from repro.faults.bridging import (BridgeKind, BridgingDiagnoser,
                                   apply_bridge, inject_bridging_fault)
from repro.sim import PatternSet, output_rows, simulate
from repro.sim.packing import unpack_bits


def test_apply_bridge_semantics():
    nl = Netlist("b")
    a = nl.add_input("a")
    b = nl.add_input("b")
    ya = nl.add_gate("ya", GateType.BUF, [a])
    yb = nl.add_gate("yb", GateType.BUF, [b])
    nl.set_outputs([ya, yb])
    shorted = nl.copy()
    apply_bridge(shorted, a, b, BridgeKind.AND)
    patterns = PatternSet.exhaustive(2)
    outs = unpack_bits(output_rows(shorted, simulate(shorted, patterns)),
                       patterns.nbits)
    for v in range(4):
        bits = patterns.vector(v)
        assert outs[0, v] == outs[1, v] == (bits[0] & bits[1])
    ored = nl.copy()
    apply_bridge(ored, a, b, BridgeKind.OR)
    outs = unpack_bits(output_rows(ored, simulate(ored, patterns)),
                       patterns.nbits)
    for v in range(4):
        bits = patterns.vector(v)
        assert outs[0, v] == (bits[0] | bits[1])


def test_apply_bridge_rejects_feedback_and_self(c17):
    nl = c17.copy()
    with pytest.raises(InjectionError, match="itself"):
        apply_bridge(nl, 0, 0, BridgeKind.AND)
    # gate 10 is in the fanout cone of input 1
    with pytest.raises(InjectionError, match="fanout cone"):
        apply_bridge(nl, nl.index_of("1"), nl.index_of("10"),
                     BridgeKind.AND)


def test_inject_bridging_fault_deterministic(alu4):
    a = inject_bridging_fault(alu4, seed=3)
    b = inject_bridging_fault(alu4, seed=3)
    assert a.truth[0].site == b.truth[0].site
    assert a.truth[0].detail == b.truth[0].detail


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_bridging_diagnosis_recovers_the_short(seed):
    """Observable injected bridges must come back from the diagnoser
    (possibly among equivalent pairs)."""
    circuit = generators.alu(4)
    patterns = PatternSet.random(circuit.num_inputs, 512, seed=1)
    workload = inject_bridging_fault(circuit, seed=seed)
    # observability check
    from repro.sim import count_failing
    spec_out = output_rows(circuit, simulate(circuit, patterns))
    impl_out = output_rows(workload.impl,
                           simulate(workload.impl, patterns))
    if count_failing(spec_out, impl_out, patterns.nbits) == 0:
        pytest.skip("bridge unobservable on these vectors")
    diag = BridgingDiagnoser(workload.impl, circuit, patterns,
                             partner_limit=25, time_budget=60.0)
    result = diag.run()
    assert result.found
    # every returned bridge must reproduce the device exactly
    from repro.sim import equivalent
    impl_out = output_rows(workload.impl,
                           simulate(workload.impl, patterns))
    for fault in result.faults:
        candidate = circuit.copy()
        apply_bridge(candidate, circuit.index_of(fault.net_a),
                     circuit.index_of(fault.net_b), fault.kind)
        out = output_rows(candidate, simulate(candidate, patterns))
        assert equivalent(out, impl_out, patterns.nbits), str(fault)
    truth_nets = {workload.truth[0].site,
                  workload.truth[0].detail.lstrip("<->")}
    hit = any({f.net_a, f.net_b} == truth_nets for f in result.faults)
    assert hit, (truth_nets, [str(f) for f in result.faults])


def test_bridging_diagnoser_clean_device(c17):
    patterns = PatternSet.random(5, 128, seed=0)
    result = BridgingDiagnoser(c17.copy(), c17, patterns).run()
    assert not result.found
    assert result.candidates_scored == 0
