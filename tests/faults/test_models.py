"""Correction application and non-mutating value prediction.

The key invariant: for every correction kind,
``corrected_line_words(...)`` (single-gate re-evaluation, no mutation)
must equal the corrected line's values in a full simulation of the
structurally corrected netlist.
"""

import numpy as np
import pytest

from repro.circuit import GateType, LineTable, Netlist, generators
from repro.errors import InjectionError
from repro.faults.models import (Correction, CorrectionKind,
                                 apply_correction, corrected_line_words,
                                 propagation_override,
                                 stuck_at_correction)
from repro.sim import PatternSet, simulate


def build():
    nl = Netlist("m")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    inv = nl.add_gate("inv", GateType.NOT, [a])
    g = nl.add_gate("g", GateType.AND, [inv, b, c])
    h = nl.add_gate("h", GateType.OR, [g, a])
    k = nl.add_gate("k", GateType.NAND, [g, b])
    nl.set_outputs([h, k])
    return nl


def corrected_signal_values(netlist, table, corr, patterns):
    """Oracle: apply structurally, simulate, read the corrected line."""
    mutated = netlist.copy()
    apply_correction(mutated, table, corr)
    values = simulate(mutated, patterns)
    line = table[corr.line]
    kind = corr.kind
    if kind in (CorrectionKind.STUCK_AT_0, CorrectionKind.STUCK_AT_1,
                CorrectionKind.INSERT_INVERTER):
        # the new value lives on the freshly added gate
        new_gate = len(netlist.gates)
        return values[new_gate]
    if kind is CorrectionKind.REMOVE_INVERTER:
        return values[netlist.gates[line.driver].fanin[0]]
    return values[line.driver]


ALL_KINDS_ON_G = [
    Correction(0, CorrectionKind.STUCK_AT_0),
    Correction(0, CorrectionKind.STUCK_AT_1),
    Correction(0, CorrectionKind.INSERT_INVERTER),
    Correction(0, CorrectionKind.GATE_REPLACE, new_type=GateType.NOR),
    Correction(0, CorrectionKind.GATE_REPLACE, new_type=GateType.XOR),
    Correction(0, CorrectionKind.REMOVE_INPUT_WIRE, pin=1),
    Correction(0, CorrectionKind.ADD_INPUT_WIRE, other_signal=0),
    Correction(0, CorrectionKind.REPLACE_INPUT_WIRE, pin=2,
               other_signal=0),
]


@pytest.mark.parametrize("template", ALL_KINDS_ON_G,
                         ids=lambda c: c.kind.value + str(c.pin or ""))
def test_prediction_matches_structural_application(template):
    nl = build()
    table = LineTable(nl)
    g_line = table.stem(nl.index_of("g")).index
    corr = Correction(g_line, template.kind, template.new_type,
                      template.pin, template.other_signal)
    patterns = PatternSet.exhaustive(3)
    values = simulate(nl, patterns)
    predicted = corrected_line_words(nl, table, corr, values)
    oracle = corrected_signal_values(nl, table, corr, patterns)
    mask = np.uint64((1 << 8) - 1)
    assert (predicted[0] & mask) == (oracle[0] & mask), corr


def test_remove_inverter_prediction_and_application():
    nl = build()
    table = LineTable(nl)
    inv_line = table.stem(nl.index_of("inv")).index
    corr = Correction(inv_line, CorrectionKind.REMOVE_INVERTER)
    patterns = PatternSet.exhaustive(3)
    values = simulate(nl, patterns)
    predicted = corrected_line_words(nl, table, corr, values)
    assert np.array_equal(predicted, values[nl.index_of("a")])
    mutated = nl.copy()
    apply_correction(mutated, table, corr)
    assert mutated.gate("g").fanin[0] == nl.index_of("a")


def test_remove_inverter_rejected_on_non_inverter():
    nl = build()
    table = LineTable(nl)
    g_line = table.stem(nl.index_of("g")).index
    corr = Correction(g_line, CorrectionKind.REMOVE_INVERTER)
    with pytest.raises(InjectionError):
        apply_correction(nl.copy(), table, corr)
    with pytest.raises(InjectionError):
        corrected_line_words(nl, table, corr, simulate(
            nl, PatternSet.exhaustive(3)))


def test_branch_corrections_touch_only_their_sink():
    nl = build()
    table = LineTable(nl)
    branch = table.branch(nl.index_of("k"), 0)  # g -> k.0
    assert branch is not None
    mutated = nl.copy()
    apply_correction(mutated, table,
                     Correction(branch.index, CorrectionKind.STUCK_AT_1))
    # h still reads g; k reads a constant
    assert mutated.gate("h").fanin[0] == nl.index_of("g")
    assert mutated.gates[mutated.gate("k").fanin[0]].gtype \
        is GateType.CONST1


def test_branch_insert_inverter():
    nl = build()
    table = LineTable(nl)
    branch = table.branch(nl.index_of("k"), 0)
    mutated = nl.copy()
    apply_correction(mutated, table,
                     Correction(branch.index,
                                CorrectionKind.INSERT_INVERTER))
    new_gate = mutated.gate("k").fanin[0]
    assert mutated.gates[new_gate].gtype is GateType.NOT
    assert mutated.gates[new_gate].fanin == [nl.index_of("g")]


def test_gate_corrections_rejected_on_branches():
    nl = build()
    table = LineTable(nl)
    branch = table.branch(nl.index_of("k"), 0)
    for corr in (Correction(branch.index, CorrectionKind.GATE_REPLACE,
                            new_type=GateType.NOR),
                 Correction(branch.index,
                            CorrectionKind.REMOVE_INPUT_WIRE, pin=0)):
        with pytest.raises(InjectionError):
            apply_correction(nl.copy(), table, corr)


def test_missing_parameters_rejected():
    nl = build()
    table = LineTable(nl)
    g_line = table.stem(nl.index_of("g")).index
    for corr in (Correction(g_line, CorrectionKind.GATE_REPLACE),
                 Correction(g_line, CorrectionKind.REMOVE_INPUT_WIRE),
                 Correction(g_line, CorrectionKind.ADD_INPUT_WIRE),
                 Correction(g_line, CorrectionKind.REPLACE_INPUT_WIRE)):
        with pytest.raises(InjectionError):
            apply_correction(nl.copy(), table, corr)


def test_describe_is_stable_and_informative():
    nl = build()
    table = LineTable(nl)
    g_line = table.stem(nl.index_of("g")).index
    corr = Correction(g_line, CorrectionKind.GATE_REPLACE,
                      new_type=GateType.NOR)
    assert corr.describe(nl, table) == "gate_replace[NOR]@g"
    sa = stuck_at_correction(table, g_line, 1)
    assert sa.describe(nl, table) == "sa1@g"
    branch = table.branch(nl.index_of("k"), 0)
    wire = Correction(branch.index, CorrectionKind.INSERT_INVERTER)
    assert wire.describe(nl, table) == "insert_inverter@g->k.0"


def test_propagation_override_shape():
    nl = build()
    table = LineTable(nl)
    g_line = table.stem(nl.index_of("g")).index
    words = np.zeros(1, dtype=np.uint64)
    stems, pins = propagation_override(
        table, Correction(g_line, CorrectionKind.STUCK_AT_0), words)
    assert list(stems) == [nl.index_of("g")]
    assert pins == {}
    branch = table.branch(nl.index_of("k"), 0)
    stems, pins = propagation_override(
        table, Correction(branch.index, CorrectionKind.STUCK_AT_0), words)
    assert stems == {}
    assert list(pins) == [(nl.index_of("k"), 0)]
