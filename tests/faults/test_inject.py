"""Fault and design-error injection workloads."""

import pytest

from repro.circuit import generators
from repro.errors import InjectionError
from repro.faults import (ErrorType, ground_truth_faults,
                          inject_design_errors, inject_stuck_at_faults,
                          observable_design_error_workload)
from repro.sim import (PatternSet, count_failing, output_rows, simulate)


def test_stuck_at_injection_ground_truth(c17):
    workload = inject_stuck_at_faults(c17, 2, seed=5)
    assert len(workload.truth) == 2
    sites = [r.site for r in workload.truth]
    assert len(set(sites)) == 2
    for record in workload.truth:
        assert record.kind in ("sa0", "sa1")
    faults = ground_truth_faults(workload)
    assert len(faults) == 2
    assert all(str(f).endswith(("sa0", "sa1")) for f in faults)


def test_stuck_at_injection_is_deterministic(c17):
    a = inject_stuck_at_faults(c17, 3, seed=9)
    b = inject_stuck_at_faults(c17, 3, seed=9)
    assert [r.site for r in a.truth] == [r.site for r in b.truth]
    c = inject_stuck_at_faults(c17, 3, seed=10)
    assert [r.site for r in a.truth] != [r.site for r in c.truth]


def test_stuck_at_injection_changes_structure_not_interface(c17):
    workload = inject_stuck_at_faults(c17, 2, seed=1)
    assert workload.impl.num_inputs == c17.num_inputs
    assert workload.impl.num_outputs == c17.num_outputs
    assert len(workload.impl.gates) == len(c17.gates) + 2


def test_too_many_faults_rejected(c17):
    with pytest.raises(InjectionError):
        inject_stuck_at_faults(c17, 1000, seed=0)


@pytest.mark.parametrize("etype", list(ErrorType))
def test_each_error_type_injectable(etype, alu4):
    workload = inject_design_errors(alu4, 1, seed=3,
                                    distribution={etype: 1.0})
    assert len(workload.truth) == 1
    assert workload.truth[0].kind == etype.value
    # interface preserved
    assert workload.impl.num_inputs == alu4.num_inputs
    assert workload.impl.num_outputs == alu4.num_outputs


def test_multi_error_injection(alu4):
    workload = inject_design_errors(alu4, 4, seed=0)
    assert len(workload.truth) == 4


def test_observable_workload_actually_fails(alu4):
    patterns = PatternSet.random(alu4.num_inputs, 512, seed=2)
    workload = observable_design_error_workload(alu4, 2, patterns,
                                                seed=4)
    spec_out = output_rows(alu4, simulate(alu4, patterns))
    impl_out = output_rows(workload.impl,
                           simulate(workload.impl, patterns))
    assert count_failing(spec_out, impl_out, patterns.nbits) > 0


def test_missing_inverter_needs_an_inverter():
    nl = generators.c17()  # all NAND, no NOT gates
    with pytest.raises(InjectionError):
        inject_design_errors(
            nl, 1, seed=0,
            distribution={ErrorType.MISSING_INVERTER: 1.0},
            max_attempts=5)
