"""The Abadir design-error model metadata."""

from repro.faults.abadir import (DEFAULT_ERROR_DISTRIBUTION, ErrorType,
                                 GATE_RELATED, REPAIRING_KIND,
                                 WIRE_RELATED)
from repro.faults.models import CorrectionKind


def test_distribution_covers_all_types_and_sums_to_one():
    assert set(DEFAULT_ERROR_DISTRIBUTION) == set(ErrorType)
    assert abs(sum(DEFAULT_ERROR_DISTRIBUTION.values()) - 1.0) < 1e-9
    assert all(w > 0 for w in DEFAULT_ERROR_DISTRIBUTION.values())


def test_every_error_has_a_repairing_correction():
    assert set(REPAIRING_KIND) == set(ErrorType)
    assert set(REPAIRING_KIND.values()) <= set(CorrectionKind)


def test_gate_wire_partition():
    assert GATE_RELATED | WIRE_RELATED == frozenset(ErrorType)
    assert not GATE_RELATED & WIRE_RELATED


def test_repair_pairs_are_inverses():
    """Each error type's repair undoes it (spot-check semantics)."""
    assert REPAIRING_KIND[ErrorType.EXTRA_INVERTER] \
        is CorrectionKind.REMOVE_INVERTER
    assert REPAIRING_KIND[ErrorType.MISSING_INVERTER] \
        is CorrectionKind.INSERT_INVERTER
    assert REPAIRING_KIND[ErrorType.EXTRA_INPUT_WIRE] \
        is CorrectionKind.REMOVE_INPUT_WIRE
    assert REPAIRING_KIND[ErrorType.MISSING_INPUT_WIRE] \
        is CorrectionKind.ADD_INPUT_WIRE
