"""Additional cross-cutting hypothesis properties."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuit import LineTable, bench_io, generators, validate
from repro.circuit.miter import build_miter
from repro.sim import (FaultSimulator, PatternSet, equivalent,
                       output_rows, popcount, simulate)
from repro.sim.sensitize import sensitization_masks


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), gates=st.integers(5, 60))
def test_bench_roundtrip_random_circuits(seed, gates):
    """Property: .bench serialization round-trips any generated DAG."""
    circuit = generators.random_dag(5, gates, 3, seed=seed)
    back = bench_io.loads(bench_io.dumps(circuit))
    validate(back)
    patterns = PatternSet.random(5, 192, seed=seed)
    assert equivalent(output_rows(circuit, simulate(circuit, patterns)),
                      output_rows(back, simulate(back, patterns)),
                      patterns.nbits)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_verilog_roundtrip_random_circuits(seed):
    from repro.circuit import verilog_io
    circuit = generators.random_dag(5, 40, 3, seed=seed)
    back = verilog_io.loads(verilog_io.dumps(circuit))
    patterns = PatternSet.random(5, 192, seed=seed)
    assert equivalent(output_rows(circuit, simulate(circuit, patterns)),
                      output_rows(back, simulate(back, patterns)),
                      patterns.nbits)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_miter_agrees_with_direct_comparison(seed):
    """Property: miter output == OR of per-output differences."""
    a = generators.random_dag(5, 30, 3, seed=seed % 9)
    b = generators.random_dag(5, 30, 3, seed=(seed % 9) + 100)
    miter = build_miter(a, b)
    patterns = PatternSet.random(5, 128, seed=seed)
    from repro.sim.compare import failing_vector_mask, masked
    direct = failing_vector_mask(
        output_rows(a, simulate(a, patterns)),
        output_rows(b, simulate(b, patterns)), patterns.nbits)
    miter_out = masked(output_rows(miter, simulate(miter, patterns)),
                       patterns.nbits)
    assert np.array_equal(miter_out[0], direct)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 3_000))
def test_sensitization_equals_detection_at_outputs(seed):
    """Property: a fault's PO sensitization masks OR together to its
    fault-simulation detection mask."""
    import random
    circuit = generators.random_dag(5, 40, 4, seed=seed % 6)
    table = LineTable(circuit)
    patterns = PatternSet.random(5, 128, seed=seed)
    fsim = FaultSimulator(circuit, patterns, table)
    rng = random.Random(seed)
    from repro.sim import SimFault
    fault = SimFault(rng.randrange(len(table)), rng.randint(0, 1))
    values = simulate(circuit, patterns)
    masks = sensitization_masks(circuit, values, table, fault,
                                patterns.nbits)
    union = np.zeros(patterns.num_words, dtype=np.uint64)
    for po in circuit.outputs:
        if po in masks:
            union |= masks[po]
    assert np.array_equal(union, fsim.detection_mask(fault))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 3_000), frames=st.integers(2, 6))
def test_unroll_output_count_and_function(seed, frames):
    """Property: unrolled model outputs match the cycle simulator."""
    import random
    from repro.circuit import SequentialSimulator
    from repro.circuit.unroll import pack_sequences, unroll
    from repro.sim.packing import unpack_bits

    seq = generators.random_sequential(4, 30, 3, 3, seed=seed % 5)
    model, umap = unroll(seq, frames)
    rng = random.Random(seed)
    names = [seq.gates[i].name for i in seq.inputs]
    sequences = [[[rng.randint(0, 1) for _ in names]
                  for _ in range(frames)] for _ in range(4)]
    patterns = pack_sequences(seq, umap, sequences)
    out = unpack_bits(output_rows(model, simulate(model, patterns)),
                      patterns.nbits)
    for v, stim in enumerate(sequences):
        sim = SequentialSimulator(seq, initial_state=0)
        for t, cycle in enumerate(stim):
            ref = sim.step(dict(zip(names, cycle)))
            for p, pos in enumerate(umap.po_positions[t]):
                assert out[pos, v] == ref[p]
