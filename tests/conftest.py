"""Shared fixtures for the test suite."""

import pytest

from repro.circuit import generators
from repro.sim import PatternSet


@pytest.fixture(scope="session")
def c17():
    return generators.c17()


@pytest.fixture(scope="session")
def s27():
    return generators.s27()


@pytest.fixture(scope="session")
def rca4():
    return generators.ripple_carry_adder(4)


@pytest.fixture(scope="session")
def alu4():
    return generators.alu(4)


@pytest.fixture(scope="session")
def mult3():
    return generators.array_multiplier(3)


@pytest.fixture()
def patterns256(c17):
    return PatternSet.random(c17.num_inputs, 256, seed=11)
