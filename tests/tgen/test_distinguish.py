"""Distinguishing vectors and diagnosis refinement."""

import pytest

from repro.circuit import GateType
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet
from repro.tgen.distinguish import (distinguishing_vector,
                                    distinguishing_vector_status,
                                    random_distinguishing_vector,
                                    refine_diagnosis)


def test_equivalent_circuits_yield_none(c17):
    vector, status = distinguishing_vector_status(c17, c17.copy())
    assert vector is None
    assert status == "equivalent"


def test_differing_circuits_distinguished(c17):
    other = c17.copy("mut")
    other.set_gate_type(other.index_of("22"), GateType.AND)
    vector = distinguishing_vector(c17, other)
    assert vector is not None
    # verify the vector actually distinguishes
    from repro.sim import output_rows, simulate
    from repro.sim.packing import pack_bits
    import numpy as np
    probe = PatternSet(pack_bits(
        np.asarray([vector], dtype=np.uint8).T), 1)
    a = output_rows(c17, simulate(c17, probe))
    b = output_rows(other, simulate(other, probe))
    assert (a[:, 0] & np.uint64(1)).tolist() \
        != (b[:, 0] & np.uint64(1)).tolist()


def test_random_search_finds_gross_difference(c17):
    other = c17.copy("mut")
    other.set_gate_type(other.index_of("22"), GateType.NOR)
    assert random_distinguishing_vector(c17, other, attempts=256) \
        is not None


def test_subtle_difference_needs_podem():
    """A circuit pair differing on exactly one input combination: random
    search over 256 vectors of 12 inputs will usually miss it, the
    miter-PODEM query will not."""
    from repro.circuit import Netlist
    nl = Netlist("wide_and")
    ins = [nl.add_input(f"i{k}") for k in range(12)]
    g = nl.add_gate("g", GateType.AND, ins)
    nl.set_outputs([g])
    other = nl.copy("wide_nand_almost")
    # differs only on the all-ones vector... make g a NAND then invert:
    other.set_gate_type(other.index_of("g"), GateType.NAND)
    # NAND vs AND differ everywhere; instead compare AND with CONST0:
    third = nl.copy("const0")
    zero = third.add_gate("z", GateType.CONST0)
    third.set_outputs([zero])
    vector, status = distinguishing_vector_status(nl, third, seed=1)
    assert status == "found"
    assert all(bit == 1 for bit in vector[:12])


def test_refine_diagnosis_prunes_candidates(c17):
    """Exact diagnosis with few vectors returns extra tuples; adding
    distinguishing vectors must prune some of them."""
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 24, seed=0)  # deliberately few
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=1)
    result = IncrementalDiagnoser(workload.impl, c17, patterns,
                                  config).run()
    if len(result.solutions) < 2:
        pytest.skip("seed produced a unique diagnosis already")
    survivors, extended = refine_diagnosis(workload.impl,
                                           result.solutions, patterns)
    assert 1 <= len(survivors) <= len(result.solutions)
    assert extended.nbits >= patterns.nbits
    # survivors still match the device on the extended vector set
    from repro.diagnose import rectifies
    for solution in survivors:
        assert rectifies(workload.impl, solution.netlist, extended)


# ----------------------------------------------------------------------
# SAT-backed distinguishing vectors
# ----------------------------------------------------------------------
def test_sat_equivalent_is_a_proof(c17):
    from repro.tgen import sat_distinguishing_vector
    vector, status = sat_distinguishing_vector(c17, c17.copy())
    assert vector is None
    assert status == "equivalent"


def test_sat_finds_subtle_difference():
    """The single-minterm case PODEM needs a search for: the SAT model
    hands the all-ones vector over directly."""
    from repro.circuit import Netlist
    from repro.tgen import sat_distinguishing_vector
    nl = Netlist("wide_and")
    ins = [nl.add_input(f"i{k}") for k in range(12)]
    g = nl.add_gate("g", GateType.AND, ins)
    nl.set_outputs([g])
    third = nl.copy("const0")
    zero = third.add_gate("z", GateType.CONST0)
    third.set_outputs([zero])
    vector, status = sat_distinguishing_vector(nl, third, seed=1)
    assert status == "found"
    assert vector[:12] == [1] * 12


def test_sat_vector_distinguishes_when_resimulated(c17):
    import numpy as np
    from repro.sim import output_rows, simulate
    from repro.sim.packing import pack_bits
    from repro.tgen import sat_distinguishing_vector
    other = c17.copy("mut")
    other.set_gate_type(other.index_of("22"), GateType.AND)
    vector, status = sat_distinguishing_vector(c17, other)
    assert status == "found"
    probe = PatternSet(pack_bits(
        np.asarray([vector], dtype=np.uint8).T), 1)
    a = output_rows(c17, simulate(c17, probe))
    b = output_rows(other, simulate(other, probe))
    assert (a[:, 0] & np.uint64(1)).tolist() \
        != (b[:, 0] & np.uint64(1)).tolist()


def test_sat_aborts_honestly_on_tiny_budget():
    from repro.circuit import Netlist
    from repro.tgen import sat_distinguishing_vector
    nl = Netlist("parity_a")
    ins = [nl.add_input(f"i{k}") for k in range(8)]
    g = nl.add_gate("g", GateType.XOR, ins)
    nl.set_outputs([g])
    other = Netlist("parity_b")
    ins2 = [other.add_input(f"i{k}") for k in range(8)]
    h1 = other.add_gate("h1", GateType.XOR, ins2[:4])
    h2 = other.add_gate("h2", GateType.XOR, ins2[4:])
    g2 = other.add_gate("g", GateType.XOR, [h1, h2])
    other.set_outputs([g2])
    vector, status = sat_distinguishing_vector(nl, other,
                                               conflict_limit=1)
    assert vector is None
    assert status == "aborted"
    vector, status = sat_distinguishing_vector(nl, other)
    assert status == "equivalent"
