"""PODEM test generation: generated tests must detect their faults."""

import pytest

from repro.circuit import GateType, LineTable, Netlist, generators
from repro.errors import SimulationError
from repro.faults.collapse import collapsed_faults
from repro.sim import FaultSimulator, SimFault, all_faults
from repro.tgen.podem import Podem, X, eval3, fill_assignment
from repro.tgen.randgen import patterns_from_vectors


def test_eval3_truth():
    assert eval3(GateType.AND, [1, X]) == X
    assert eval3(GateType.AND, [0, X]) == 0
    assert eval3(GateType.OR, [1, X]) == 1
    assert eval3(GateType.OR, [0, X]) == X
    assert eval3(GateType.NOT, [X]) == X
    assert eval3(GateType.NOT, [0]) == 1
    assert eval3(GateType.XOR, [1, X]) == X
    assert eval3(GateType.XOR, [1, 1]) == 0
    assert eval3(GateType.NAND, [0, X]) == 1
    assert eval3(GateType.NOR, [X, X]) == X
    assert eval3(GateType.XNOR, [1, 0]) == 0
    assert eval3(GateType.CONST0, []) == 0
    assert eval3(GateType.CONST1, []) == 1


@pytest.mark.parametrize("name", ["c17", "r432", "r499"])
def test_generated_vectors_detect_their_faults(name):
    circuit = generators.by_name(name, scale=0.25)
    table = LineTable(circuit)
    podem = Podem(circuit, table, backtrack_limit=200)
    faults = collapsed_faults(circuit, table)
    generated = aborted = untestable = 0
    for fault in faults:
        assignment, stats = podem.generate(fault)
        if assignment is None:
            if stats.aborted:
                aborted += 1
            else:
                untestable += 1
            continue
        generated += 1
        vector = fill_assignment(circuit, assignment)
        patterns = patterns_from_vectors(circuit, [vector])
        fsim = FaultSimulator(circuit, patterns, table)
        assert fsim.detects(fault), \
            f"{table.describe(fault.line)}/sa{fault.value}"
    # PODEM should handle the vast majority of these faults
    assert generated / len(faults) > 0.85, (generated, aborted,
                                            untestable)


def test_redundant_fault_is_untestable():
    """a AND ~a == 0: the output sa0 is undetectable."""
    nl = Netlist("red")
    a = nl.add_input("a")
    na = nl.add_gate("na", GateType.NOT, [a])
    g = nl.add_gate("g", GateType.AND, [a, na])
    out = nl.add_gate("out", GateType.OR, [g, a])
    nl.set_outputs([out])
    table = LineTable(nl)
    podem = Podem(nl, table)
    fault = SimFault(table.stem(g).index, 0)
    assignment, stats = podem.generate(fault)
    assert assignment is None
    assert not stats.aborted  # proven untestable, not given up


def test_sequential_netlist_rejected(s27):
    with pytest.raises(SimulationError, match="combinational"):
        Podem(s27)


def test_fill_assignment_random_and_zero(c17):
    import random
    assignment = {c17.inputs[0]: 1}
    zeros = fill_assignment(c17, assignment)
    assert zeros[0] == 1 and sum(zeros[1:]) == 0
    rng = random.Random(0)
    filled = fill_assignment(c17, assignment, rng)
    assert filled[0] == 1
    assert len(filled) == 5


def test_backtrack_limit_aborts():
    """A hard reconvergent circuit with limit 0 must abort, not loop."""
    circuit = generators.by_name("r499", scale=0.25)
    table = LineTable(circuit)
    podem = Podem(circuit, table, backtrack_limit=0)
    hard = [f for f in all_faults(table)][50]
    assignment, stats = podem.generate(hard)
    assert assignment is None or stats.backtracks == 0


def test_backtrace_terminates_on_duplicate_pin_xor():
    """XOR(a, a) == 0: justifying 1 must exhaust cleanly, not loop.

    The backtrace walk is guarded by a visited set (not a step budget);
    a gate reading the same signal on every pin is the densest cycle
    of revisits it can meet.
    """
    nl = Netlist("dup")
    a = nl.add_input("a")
    x = nl.add_gate("x", GateType.XOR, [a, a])
    out = nl.add_gate("out", GateType.OR, [x, a])
    nl.set_outputs([out])
    table = LineTable(nl)
    podem = Podem(nl, table)
    fault = SimFault(table.stem(x).index, 0)  # needs x=1: impossible
    assignment, stats = podem.generate(fault)
    assert assignment is None
    assert not stats.aborted  # proven untestable by exhaustion


@pytest.mark.parametrize("guide", [False, True])
def test_xor_multiple_x_fanins_generate_and_detect(guide):
    """3-input XOR: several X fanins at once, every fault testable.

    Pins the fix for the old backtrace that pretended the remaining X
    inputs of an XOR would land at 0 when computing the forced parity.
    """
    nl = Netlist("xor3")
    a, b, c = (nl.add_input(n) for n in "abc")
    x = nl.add_gate("x", GateType.XOR, [a, b, c])
    nl.set_outputs([x])
    table = LineTable(nl)
    podem = Podem(nl, table, guide=guide)
    for fault in collapsed_faults(nl, table):
        assignment, stats = podem.generate(fault)
        assert assignment is not None, \
            f"{table.describe(fault.line)}/sa{fault.value}"
        vector = fill_assignment(nl, assignment)
        patterns = patterns_from_vectors(nl, [vector])
        assert FaultSimulator(nl, patterns, table).detects(fault)


@pytest.mark.parametrize("guide", [False, True])
def test_forced_parity_with_duplicate_pins(guide):
    """XOR(a, b, b) == a: the forced value for the last X pin must be
    computed over *pins*, not deduplicated signals."""
    nl = Netlist("dup_parity")
    a = nl.add_input("a")
    b = nl.add_input("b")
    x = nl.add_gate("x", GateType.XOR, [a, b, b])
    nl.set_outputs([x])
    table = LineTable(nl)
    podem = Podem(nl, table, guide=guide)
    for fault in collapsed_faults(nl, table):
        assignment, stats = podem.generate(fault)
        if assignment is None:
            assert not stats.aborted  # b-faults are genuinely untestable
            continue
        vector = fill_assignment(nl, assignment)
        patterns = patterns_from_vectors(nl, [vector])
        assert FaultSimulator(nl, patterns, table).detects(fault)


def test_guided_matches_unguided_coverage():
    """SCOAP guidance may reorder decisions, never change testability."""
    circuit = generators.by_name("r432", scale=0.25)
    table = LineTable(circuit)
    plain = Podem(circuit, table, backtrack_limit=200)
    guided = Podem(circuit, table, backtrack_limit=200, guide=True)
    for fault in collapsed_faults(circuit, table):
        a_plain, s_plain = plain.generate(fault)
        a_guided, s_guided = guided.generate(fault)
        if s_plain.aborted or s_guided.aborted:
            continue  # budget differences are fair game
        assert (a_plain is None) == (a_guided is None), \
            f"{table.describe(fault.line)}/sa{fault.value}"


def test_static_precheck_skips_redundant_fault():
    """The guided pre-check answers untestable with zero search."""
    nl = Netlist("red2")
    a = nl.add_input("a")
    na = nl.add_gate("na", GateType.NOT, [a])
    g = nl.add_gate("g", GateType.AND, [a, na])
    out = nl.add_gate("out", GateType.OR, [g, a])
    nl.set_outputs([out])
    table = LineTable(nl)
    podem = Podem(nl, table, guide=True)
    fault = SimFault(table.stem(g).index, 0)
    assignment, stats = podem.generate(fault)
    assert assignment is None
    assert stats.static_untestable
    assert stats.backtracks == 0 and stats.implications == 0
    assert not stats.aborted
