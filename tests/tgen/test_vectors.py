"""Random generation, compaction and the combined vector flows."""

from repro.circuit import LineTable, generators
from repro.faults.collapse import collapsed_faults
from repro.sim import FaultSimulator, PatternSet
from repro.tgen import (coverage_driven_patterns, deterministic_patterns,
                        diagnosis_vectors, patterns_from_vectors,
                        random_patterns, reverse_order_compact)


def test_random_patterns_shape(c17):
    pats = random_patterns(c17, 100, seed=1)
    assert pats.nbits == 100
    assert pats.num_inputs == 5


def test_patterns_from_vectors_empty(c17):
    pats = patterns_from_vectors(c17, [])
    assert pats.nbits == 0


def test_coverage_driven_growth(c17):
    table = LineTable(c17)
    faults = collapsed_faults(c17, table)
    pats = coverage_driven_patterns(c17, faults, seed=0, batch=32,
                                    max_vectors=512)
    assert 32 <= pats.nbits <= 512
    fsim = FaultSimulator(c17, pats, table)
    assert fsim.coverage(faults) > 0.9


def test_reverse_order_compaction_preserves_coverage():
    circuit = generators.by_name("r432", scale=0.25)
    table = LineTable(circuit)
    faults = collapsed_faults(circuit, table)
    pats = PatternSet.random(circuit.num_inputs, 256, seed=2)
    before = FaultSimulator(circuit, pats, table).coverage(faults)
    compact = reverse_order_compact(circuit, pats, faults)
    after = FaultSimulator(circuit, compact, table).coverage(faults)
    assert compact.nbits < pats.nbits
    assert after == before


def test_deterministic_patterns_cover_most_faults(c17):
    pats = deterministic_patterns(c17, seed=0)
    table = LineTable(c17)
    faults = collapsed_faults(c17, table)
    assert pats.nbits > 0
    coverage = FaultSimulator(c17, pats, table).coverage(faults)
    assert coverage > 0.9


def test_diagnosis_vectors_mixes_components(c17):
    mixed = diagnosis_vectors(c17, num_random=128, seed=0)
    rand_only = diagnosis_vectors(c17, num_random=128, seed=0,
                                  deterministic=False)
    assert rand_only.nbits == 128
    assert mixed.nbits > 128


def test_deterministic_patterns_with_stats_accounting(c17):
    from repro.tgen import deterministic_patterns_with_stats

    pats, stats = deterministic_patterns_with_stats(c17, seed=1,
                                                    guide=True)
    assert stats.guided
    assert stats.vectors == pats.nbits
    assert stats.faults > 0 and stats.targeted <= stats.faults
    # every targeted fault is accounted for exactly once
    assert (stats.generated + stats.untestable + stats.aborted
            == stats.targeted)
    assert stats.static_untestable <= stats.untestable
    payload = stats.to_dict()
    assert payload["vectors"] == pats.nbits
    # the wrapper stays behaviour-identical to the stats flavour
    assert deterministic_patterns(c17, seed=1).nbits == \
        deterministic_patterns_with_stats(c17, seed=1)[0].nbits
