"""Verification helpers and result/report objects."""

from repro.circuit import GateType
from repro.diagnose import (exhaustively_equivalent, matches_truth,
                            rectifies)
from repro.diagnose.report import (CorrectionRecord, DiagnosisResult,
                                   EngineStats, Solution)
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


def test_rectifies_and_exhaustive(c17):
    patterns = PatternSet.random(5, 128, seed=0)
    assert rectifies(c17, c17.copy(), patterns)
    assert exhaustively_equivalent(c17, c17.copy())
    workload = inject_stuck_at_faults(c17, 1, seed=0)
    assert not exhaustively_equivalent(c17, workload.impl)


def test_correction_record_accessors():
    rec = CorrectionRecord("sa1@n12->g7.1", "sa1", "n12->g7.1", 2, 3)
    assert rec.driver_name == "n12"
    assert rec.polarity == 1
    rec2 = CorrectionRecord("gate_replace[NOR]@g", "gate_replace", "g")
    assert rec2.polarity is None
    assert rec2.driver_name == "g"


def test_solution_key_and_describe():
    recs = (CorrectionRecord("sa1@a", "sa1", "a"),
            CorrectionRecord("sa0@b", "sa0", "b"))
    sol = Solution(recs)
    assert sol.size == 2
    assert sol.key == frozenset({"sa1@a", "sa0@b"})
    assert sol.sites == frozenset({"a", "b"})
    assert sol.describe() == "sa0@b + sa1@a"


def test_matches_truth_tolerates_branch_stem():
    from repro.faults.inject import InjectionRecord
    truth = [InjectionRecord("sa1", "n12->g7.1")]
    stem_sol = Solution((CorrectionRecord("sa1@n12", "sa1", "n12"),))
    assert matches_truth(stem_sol, truth)
    wrong_pol = Solution((CorrectionRecord("sa0@n12", "sa0", "n12"),))
    assert not matches_truth(wrong_pol, truth)
    wrong_site = Solution((CorrectionRecord("sa1@n13", "sa1", "n13"),))
    assert not matches_truth(wrong_site, truth)


def test_engine_stats_merge():
    a = EngineStats(nodes=3, rounds=2, diag_time=1.0, corr_time=0.5,
                    total_time=2.0, levels_tried=["x"])
    b = EngineStats(nodes=4, rounds=5, diag_time=0.5, corr_time=0.5,
                    total_time=1.0, levels_tried=["y"], truncated=True)
    a.merge(b)
    assert a.nodes == 7
    assert a.rounds == 5
    assert a.truncated
    assert a.levels_tried == ["x", "y"]


def test_result_properties():
    recs = (CorrectionRecord("sa1@a", "sa1", "a"),)
    result = DiagnosisResult([Solution(recs)], EngineStats(), 100, 10)
    assert result.found
    assert result.min_size == 1
    assert result.distinct_sites() == {"a"}
    empty = DiagnosisResult([], EngineStats(), 100, 10)
    assert not empty.found
    assert empty.min_size == 0
    assert "0 correction set(s)" in empty.summary()
