"""The §3.3 ranking formula."""

from repro.diagnose import (DiagnosisState, evaluate_correction,
                            rank_corrections, rank_value,
                            stuck_at_corrections)
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet, output_rows, simulate


def test_rank_value_formula():
    assert rank_value(0.0, h1_score=0.2, h3_score=0.9) == 0.9
    assert rank_value(1.0, h1_score=0.2, h3_score=0.9) == 0.2
    assert abs(rank_value(0.5, 0.4, 0.8) - 0.6) < 1e-12


def test_rank_value_weights_shift_with_v_ratio():
    """Many failures -> h1 dominates; few failures -> h3 dominates."""
    fixer = dict(h1_score=1.0, h3_score=0.5)   # repairs but corrupts
    keeper = dict(h1_score=0.2, h3_score=1.0)  # safe but weak
    assert rank_value(0.9, **fixer) > rank_value(0.9, **keeper)
    assert rank_value(0.1, **fixer) < rank_value(0.1, **keeper)


def test_rank_corrections_sorted_and_true_fix_on_top(c17):
    workload = inject_stuck_at_faults(c17, 1, seed=8)
    patterns = PatternSet.random(5, 256, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(c17, patterns, device_out)
    screened = []
    for line in range(len(state.table)):
        for corr in stuck_at_corrections(line):
            sc = evaluate_correction(state, corr, 1, h3=0.0)
            if sc is not None:
                screened.append(sc)
    ranked = rank_corrections(state, screened)
    values = [v for v, _ in ranked]
    assert values == sorted(values, reverse=True)
    # a full fix has h1 = h3 = 1 -> rank 1.0 -> first
    assert ranked[0][1].fixes_all
    assert abs(ranked[0][0] - 1.0) < 1e-12
