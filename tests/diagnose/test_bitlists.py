"""DiagnosisState: the Verr/Vcorr bit-list machinery."""

import numpy as np

from repro.diagnose import DiagnosisState
from repro.faults import inject_stuck_at_faults
from repro.sim import (PatternSet, output_rows, popcount, simulate)
from repro.sim.compare import failing_vector_mask


def make_state(spec, count=1, seed=0, nbits=200):
    workload = inject_stuck_at_faults(spec, count, seed=seed)
    patterns = PatternSet.random(spec.num_inputs, nbits, seed=1)
    spec_out = output_rows(spec, simulate(spec, patterns))
    return DiagnosisState(workload.impl, patterns, spec_out), \
        spec_out, patterns


def test_masks_partition_the_vector_set(c17):
    state, spec_out, patterns = make_state(c17)
    assert state.num_err + state.num_corr == patterns.nbits
    assert popcount(state.err_mask & state.corr_mask) == 0
    impl_out = output_rows(state.netlist, simulate(state.netlist,
                                                   patterns))
    ref = failing_vector_mask(spec_out, impl_out, patterns.nbits)
    assert np.array_equal(state.err_mask, ref)


def test_rectified_state(c17):
    patterns = PatternSet.random(5, 100, seed=0)
    spec_out = output_rows(c17, simulate(c17, patterns))
    state = DiagnosisState(c17, patterns, spec_out)
    assert state.rectified
    assert state.v_ratio == 0.0
    assert state.num_err_pairs == 0


def test_line_values_and_verr_size(c17):
    state, _, _ = make_state(c17, seed=3)
    assert state.verr_size() == state.num_err
    for line in state.table:
        vals = state.line_values(line.index)
        assert vals.shape == (state.values.shape[1],)
        assert np.array_equal(vals, state.values[line.driver])


def test_cone_caching(c17):
    state, _, _ = make_state(c17)
    cone1 = state.cone_of(0)
    cone2 = state.cone_of(0)
    assert cone1 is cone2


def test_outcome_of_override_matches_structural_fix(c17):
    """Overriding the faulty line with its correct values must rectify
    everything — and the outcome object must see that."""
    workload = inject_stuck_at_faults(c17, 1, seed=2)
    patterns = PatternSet.random(5, 256, seed=1)
    spec_out = output_rows(c17, simulate(c17, patterns))
    # Diagnose in the DEDC direction: fix impl toward spec.
    state = DiagnosisState(workload.impl, patterns, spec_out)
    record = workload.truth[0]
    driver_name = record.site.split("->", 1)[0]
    # the constant gate that models the fault inside impl
    const_gates = [g for g in state.netlist.gates
                   if g.name.startswith(driver_name + "_sa")]
    assert const_gates
    const = const_gates[0]
    # true values of the faulted signal
    correct_words = state.values[state.netlist.index_of(driver_name)]
    line = state.table.stem(const.index)
    outcome = state.outcome_of_override(line.index, correct_words)
    assert outcome.fixes_all
    assert outcome.rectified_vectors == state.num_err
    assert outcome.broken_vectors == 0
    assert outcome.h1_score(state) == 1.0
    assert outcome.h3_score(state) == 1.0


def test_outcome_scores_degenerate_cases(c17):
    state, _, _ = make_state(c17, seed=5)
    # overriding with identical values changes nothing
    line = state.table[0]
    outcome = state.outcome_of_override(0, state.values[line.driver])
    assert outcome.rectified_vectors == 0
    assert outcome.broken_vectors == 0
    assert not outcome.fixes_all or state.num_err == 0
