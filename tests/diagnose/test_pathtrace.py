"""Path-trace marking and its completeness guarantee.

The load-bearing property (from Veneris & Hajj, used in §3.1): for any
failing vector, path trace marks at least one line from every set of
valid corrections — in particular, at least one line of the *actual*
injected fault set.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import GateType, Netlist, generators
from repro.diagnose import (DiagnosisState, path_trace_counts,
                            path_trace_vector, marked_lines,
                            top_fraction)
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet, output_rows, simulate
from repro.sim.packing import bit_indices


def diagnosis_state_for(spec, count, seed, nbits=256):
    """State in the fault-modeling direction (good netlist vs device)."""
    workload = inject_stuck_at_faults(spec, count, seed=seed)
    patterns = PatternSet.random(spec.num_inputs, nbits, seed=seed + 1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(spec, patterns, device_out)
    return state, workload


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5_000), count=st.integers(1, 3))
def test_pathtrace_marks_a_fault_line(seed, count):
    """Property: every failing vector's marking hits >=1 injected site."""
    spec = generators.random_dag(6, 50, 4, seed=seed % 7)
    state, workload = diagnosis_state_for(spec, count, seed)
    failing = bit_indices(state.err_mask, state.patterns.nbits)
    if not failing:
        return  # the random faults were unobservable on these vectors
    truth_drivers = {r.site.split("->", 1)[0] for r in workload.truth}
    for vector in failing[:10]:
        marked = path_trace_vector(state, vector)
        marked_drivers = {
            state.netlist.gates[state.table[m].driver].name
            for m in marked}
        assert marked_drivers & truth_drivers, (
            seed, count, vector, sorted(marked_drivers),
            sorted(truth_drivers))


def test_controlling_input_rule():
    """At an AND with one controlling (0) input, only that side is
    traced; with all-1 inputs, both sides are traced."""
    nl = Netlist("pt")
    a = nl.add_input("a")
    b = nl.add_input("b")
    g = nl.add_gate("g", GateType.AND, [a, b])
    nl.set_outputs([g])
    patterns = PatternSet.from_vectors([[0, 1], [1, 1]])
    # make both vectors "failing" against an inverted spec
    spec_out = ~simulate(nl, patterns)[[g]]
    state = DiagnosisState(nl, patterns, spec_out)
    marked0 = {state.table.describe(m)
               for m in path_trace_vector(state, 0)}
    assert "a" in marked0      # a=0 controls
    assert "b" not in marked0  # b=1 is not traced
    marked1 = {state.table.describe(m)
               for m in path_trace_vector(state, 1)}
    assert {"a", "b"} <= marked1


def test_branch_lines_get_marked(c17):
    state, workload = diagnosis_state_for(c17, 1, seed=0)
    counts = path_trace_counts(state, max_vectors=16, seed=0)
    described = {state.table.describe(m) for m in marked_lines(counts)}
    assert any("->" in d for d in described)  # some branch marked


def test_counts_zero_when_rectified(c17):
    patterns = PatternSet.random(5, 64, seed=0)
    spec_out = output_rows(c17, simulate(c17, patterns))
    state = DiagnosisState(c17, patterns, spec_out)
    counts = path_trace_counts(state)
    assert counts.sum() == 0


def test_counts_sampling_is_bounded(c17):
    state, _ = diagnosis_state_for(c17, 2, seed=1)
    counts = path_trace_counts(state, max_vectors=4, seed=0)
    assert counts.max() <= 4


def test_top_fraction_tie_inclusive():
    counts = np.array([0, 5, 5, 5, 2, 0])
    top = top_fraction(counts, 0.34)  # 1/3 of the 4 marked lines
    # lines 1,2,3 tie at 5; all three must be kept
    assert set(top) == {1, 2, 3}
    assert top_fraction(np.zeros(4, dtype=int), 0.5) == []


def test_marked_lines_sorted_by_count():
    counts = np.array([1, 7, 0, 3])
    assert marked_lines(counts) == [1, 3, 0]
