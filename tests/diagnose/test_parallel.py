"""Parallel scheduler determinism, truncation semantics, per-node seeds.

The scheduler's contract (repro.parallel): the shard plan, per-shard
exploration and merge order are functions of (netlist, patterns,
config) only, so ``jobs=N`` must return the same solution list and the
same deterministic counters as ``jobs=1``.  Wall-clock fields are
measurements and are excluded from every comparison here.
"""

import pytest

from repro.circuit import generators
from repro.diagnose import (DiagnosisConfig, DiagnosisState,
                            IncrementalDiagnoser, Mode, derive_seed,
                            path_trace_counts, rectifies,
                            solution_sort_key)
from repro.faults import (inject_stuck_at_faults,
                          observable_design_error_workload)
from repro.parallel import ShardResult, run_shards
from repro.sim import PatternSet
from repro.sim.logicsim import output_rows, simulate
from repro.tgen import random_patterns


def _exact_result(spec, workload, patterns, **kwargs):
    # Stuck-at convention (see tests/test_integration.py): the faulty
    # unit's observed behavior is the "spec"; the golden netlist is the
    # implementation that gets stuck-at corrections injected until it
    # reproduces that behavior.
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, **kwargs)
    return IncrementalDiagnoser(workload.impl, spec, patterns,
                                config).run()


def _describes(result):
    return [s.describe() for s in result.solutions]


def _deterministic_stats(stats):
    """Every EngineStats field of the determinism contract (no times)."""
    return {
        "nodes": stats.nodes,
        "rounds": stats.rounds,
        "truncated": stats.truncated,
        "truncation_causes": list(stats.truncation_causes),
        "prescreen_dropped": stats.prescreen_dropped,
        "levels_tried": list(stats.levels_tried),
        "shards": [(s["shard"], s["nodes"], s["truncated"], s["error"])
                   for s in stats.shards],
    }


# ----------------------------------------------------------------------
# jobs=1 ≡ jobs=N
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_exact_jobs_identical_on_random_netlists(seed):
    spec = generators.random_dag(5, 30, 3, seed=seed)
    workload = inject_stuck_at_faults(spec, 2, seed=seed + 7)
    patterns = PatternSet.random(5, 256, seed=seed + 1)
    serial = _exact_result(spec, workload, patterns, max_errors=2,
                           jobs=1)
    parallel = _exact_result(spec, workload, patterns, max_errors=2,
                             jobs=4)
    assert _describes(serial) == _describes(parallel)
    assert (_deterministic_stats(serial.stats)
            == _deterministic_stats(parallel.stats))


def test_dedc_jobs_identical(alu4):
    patterns = random_patterns(alu4, 512, seed=5)
    workload = observable_design_error_workload(alu4, 2, patterns,
                                                seed=11)

    def run(jobs):
        config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                                 max_errors=3, jobs=jobs)
        return IncrementalDiagnoser(alu4, workload.impl, patterns,
                                    config).run()

    serial, parallel = run(1), run(4)
    assert _describes(serial) == _describes(parallel)
    assert serial.stats.levels_tried == parallel.stats.levels_tried
    assert serial.stats.nodes == parallel.stats.nodes
    assert rectifies(alu4, parallel.solutions[0].netlist, patterns)


def test_same_config_same_result(c17):
    """Reproducibility: two identical runs print identically."""
    workload = inject_stuck_at_faults(c17, 2, seed=3)
    patterns = PatternSet.random(5, 512, seed=9)
    first = _exact_result(c17, workload, patterns, max_errors=2)
    second = _exact_result(c17, workload, patterns, max_errors=2)
    assert _describes(first) == _describes(second)
    assert (_deterministic_stats(first.stats)
            == _deterministic_stats(second.stats))


def test_solutions_canonically_sorted(c17):
    """Exact-mode output order is (cardinality, signature tuple), not
    dict discovery order."""
    workload = inject_stuck_at_faults(c17, 2, seed=3)
    patterns = PatternSet.random(5, 512, seed=9)
    result = _exact_result(c17, workload, patterns, max_errors=2,
                           jobs=2)
    assert len(result.solutions) > 1
    keys = [solution_sort_key(s) for s in result.solutions]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# truncation semantics
# ----------------------------------------------------------------------
def test_node_budget_yields_partial_flagged_result(c17):
    """Shard budget exhaustion keeps the solutions found so far and
    flags the run — never a silent drop."""
    workload = inject_stuck_at_faults(c17, 2, seed=3)
    patterns = PatternSet.random(5, 512, seed=9)
    full = _exact_result(c17, workload, patterns, max_errors=2)
    partial = _exact_result(c17, workload, patterns, max_errors=2,
                            worker_budget=2)
    assert not full.stats.truncated
    assert partial.stats.truncated
    assert "node-budget" in partial.stats.truncation_causes
    assert partial.found  # outcome-guided ordering finds some early
    assert set(_describes(partial)) <= set(_describes(full))
    for solution in partial.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)


def test_zero_budget_truncates_before_any_node(c17):
    """The budget check runs before a candidate is marked visited or
    explored (the pre-PR bug explored budget-0 nodes and marked the
    first dropped candidate as visited)."""
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 512, seed=9)
    result = _exact_result(c17, workload, patterns, max_errors=1,
                           worker_budget=0)
    assert result.stats.truncated
    assert result.stats.nodes == 0
    assert not result.found


def test_time_budget_expiry_mid_tree_truncates(c17):
    """Deadline expiry deep in the DFS unwinds every recursion level
    (not just one) and still reports the partial solutions found."""
    workload = inject_stuck_at_faults(c17, 3, seed=0)
    patterns = PatternSet.random(5, 512, seed=9)
    result = _exact_result(c17, workload, patterns, max_errors=3,
                           time_budget=0.05)
    assert result.stats.truncated
    assert "time-budget" in result.stats.truncation_causes
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)


def test_failed_shard_degrades_not_hangs(c17):
    """A shard that dies (here: an unknown task kind reaching the
    worker) comes back as an error result; the merge would flag the
    run truncated instead of dropping it silently."""
    patterns = PatternSet.random(5, 64, seed=0)
    spec_out = output_rows(c17, simulate(c17, patterns))
    config = DiagnosisConfig()
    payload = (c17, patterns, spec_out, config)
    for jobs in (1, 2):
        results = run_shards([("bogus-kind", 0)], jobs, payload=payload)
        assert len(results) == 1
        assert results[0].error is not None
        assert "bogus-kind" in results[0].error


def test_merge_records_failed_shard_as_truncated(c17):
    patterns = PatternSet.random(5, 64, seed=0)
    engine = IncrementalDiagnoser(c17, c17, patterns)
    from repro.diagnose.report import EngineStats
    stats = EngineStats()
    engine._merge_shard(stats, ShardResult(0, error="worker died"),
                        "N=1 sa0@n1", None)
    assert stats.truncated
    assert stats.truncation_causes == ["N=1 sa0@n1: worker died"]
    assert stats.shards[0]["error"] == "worker died"


# ----------------------------------------------------------------------
# per-node path-trace seeds
# ----------------------------------------------------------------------
def test_derive_seed_stable_and_decorrelated():
    # root keeps the base seed; any applied signature perturbs it
    assert derive_seed(7, ()) == 7
    a = derive_seed(0, ("sa1@n12",))
    b = derive_seed(0, ("sa0@n12",))
    c = derive_seed(0, ("sa1@n12", "sa0@g3"))
    assert len({0, a, b, c}) == 4
    # application-order independent (correction sets are frozensets)
    assert derive_seed(0, ("x", "y")) == derive_seed(0, ("y", "x"))
    # cross-process/cross-version stable (cryptographic, not hash())
    assert a == 3606144054781808809


def test_per_node_samples_decorrelated(c17):
    """Same state, different tree nodes => different path-trace samples
    (the pre-PR bug sampled the identical vector subset everywhere)."""
    workload = inject_stuck_at_faults(c17, 2, seed=3)
    patterns = PatternSet.random(5, 1024, seed=9)
    spec_out = output_rows(c17, simulate(c17, patterns))
    state = DiagnosisState(workload.impl, patterns, spec_out)
    assert state.num_err > 24  # sampling actually kicks in
    root = path_trace_counts(state, 24, derive_seed(0, ()))
    child = path_trace_counts(state, 24,
                              derive_seed(0, ("sa0@fake",)))
    again = path_trace_counts(state, 24,
                              derive_seed(0, ("sa0@fake",)))
    assert (child == again).all()        # reproducible per node
    assert not (root == child).all()     # decorrelated across nodes
