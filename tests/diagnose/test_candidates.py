"""Candidate-correction enumeration and wire-source scoring."""

import pytest

from repro.circuit import GateType, LineTable, Netlist, generators
from repro.diagnose import (DiagnosisState, corrections_for_line,
                            design_error_corrections,
                            stuck_at_corrections)
from repro.diagnose.candidates import scored_wire_sources
from repro.diagnose.config import DiagnosisConfig, Mode
from repro.faults import observable_design_error_workload
from repro.faults.models import CorrectionKind
from repro.sim import PatternSet, output_rows, simulate


def dedc_state(spec, seed=0, nerr=1):
    patterns = PatternSet.random(spec.num_inputs, 512, seed=1)
    workload = observable_design_error_workload(spec, nerr, patterns,
                                                seed=seed)
    spec_out = output_rows(spec, simulate(spec, patterns))
    return DiagnosisState(workload.impl, patterns, spec_out), workload


def test_stuck_at_vocabulary():
    corrs = stuck_at_corrections(5)
    assert {c.kind for c in corrs} == {CorrectionKind.STUCK_AT_0,
                                       CorrectionKind.STUCK_AT_1}
    assert all(c.line == 5 for c in corrs)


def test_mode_dispatch(alu4):
    state, _ = dedc_state(alu4)
    sa_config = DiagnosisConfig(mode=Mode.STUCK_AT)
    de_config = DiagnosisConfig(mode=Mode.DESIGN_ERROR)
    line = state.table.stem(state.netlist.outputs[0]).index
    assert len(corrections_for_line(state, line, sa_config)) == 2
    assert len(corrections_for_line(state, line, de_config)) > 2


def test_design_error_vocabulary_on_and_gate(alu4):
    state, _ = dedc_state(alu4)
    netlist = state.netlist
    and_gate = next(g.index for g in netlist.gates
                    if g.gtype is GateType.AND and len(g.fanin) == 2
                    and g.index in netlist.live_set())
    line = state.table.stem(and_gate).index
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, wire_source_limit=4)
    corrs = design_error_corrections(state, line, config)
    kinds = {c.kind for c in corrs}
    assert CorrectionKind.INSERT_INVERTER in kinds
    assert CorrectionKind.GATE_REPLACE in kinds
    assert CorrectionKind.REMOVE_INPUT_WIRE in kinds
    # gate replacements cover the 5 other binary types
    replacements = {c.new_type for c in corrs
                    if c.kind is CorrectionKind.GATE_REPLACE}
    assert GateType.NAND in replacements
    assert GateType.XOR in replacements


def test_input_stem_gets_only_inverter_fix(c17):
    state, _ = dedc_state(c17)
    pi_line = state.table.stem(state.netlist.inputs[0]).index
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR)
    corrs = design_error_corrections(state, pi_line, config)
    assert {c.kind for c in corrs} == {CorrectionKind.INSERT_INVERTER}


def test_branch_lines_get_inverter_fixes_only(c17):
    state, _ = dedc_state(c17)
    branch = next(l for l in state.table if not l.is_stem)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR)
    corrs = design_error_corrections(state, branch.index, config)
    assert all(c.kind in (CorrectionKind.INSERT_INVERTER,
                          CorrectionKind.REMOVE_INVERTER)
               for c in corrs)


def test_wire_sources_never_create_cycles(alu4):
    state, _ = dedc_state(alu4, seed=2)
    netlist = state.netlist
    for gate in list(netlist.gates)[::7]:
        if gate.gtype in (GateType.INPUT, GateType.CONST0,
                          GateType.CONST1) or not gate.fanin:
            continue
        for src in scored_wire_sources(state, gate.index, None, 6):
            # acyclicity: the new source must not depend on the gate
            assert src not in netlist.fanout_cone(gate.index)


def test_wire_sources_exclude_existing_fanins(alu4):
    state, _ = dedc_state(alu4, seed=2)
    netlist = state.netlist
    gate = next(g for g in netlist.gates
                if g.gtype is GateType.AND and g.index
                in netlist.live_set())
    sources = scored_wire_sources(state, gate.index, None, 10)
    assert not set(sources) & set(gate.fanin)
    assert gate.index not in sources


def test_wire_sources_find_detached_gate():
    """A missing-wire error orphans its source; the scorer must still
    offer that (detached) gate as a reconnection candidate."""
    nl = Netlist("orphan")
    a, b, c = (nl.add_input(n) for n in "abc")
    u = nl.add_gate("u", GateType.AND, [a, b])
    g = nl.add_gate("g", GateType.OR, [u, c])
    nl.set_outputs([g])
    impl = nl.copy("impl")
    impl.remove_fanin_pin(g, 0)  # drop u: it is now detached
    patterns = PatternSet.exhaustive(3)
    spec_out = output_rows(nl, simulate(nl, patterns))
    state = DiagnosisState(impl, patterns, spec_out)
    assert u not in impl.live_set()
    # the degraded gate is a BUF now; scoring it as a restored OR must
    # surface the orphaned source
    sources = scored_wire_sources(state, g, None, 5,
                                  as_type=GateType.OR)
    assert u in sources
    # and the enumerator emits the complete typed repair
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, wire_source_limit=5)
    line = state.table.stem(g).index
    corrs = design_error_corrections(state, line, config)
    fix = [c for c in corrs
           if c.kind is CorrectionKind.ADD_INPUT_WIRE
           and c.other_signal == u and c.new_type is GateType.OR]
    assert fix
    from repro.diagnose import evaluate_correction
    sc = evaluate_correction(state, fix[0], 1, h3=0.0)
    assert sc is not None and sc.fixes_all


def test_scored_sources_ranked_by_benefit(c17):
    state, workload = dedc_state(c17, seed=1)
    # scores must be deterministic
    line = state.table.stem(state.netlist.outputs[0]).index
    driver = state.table[line].driver
    a = scored_wire_sources(state, driver, None, 6)
    b = scored_wire_sources(state, driver, None, 6)
    assert a == b
