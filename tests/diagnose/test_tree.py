"""Decision tree: Fig. 2 round order, traversal variants, caps."""

import pytest

from repro.diagnose import (DecisionTree, DiagnosisConfig, DiagnosisState,
                            HLevel, Mode, round_visit_order)
from repro.diagnose.report import EngineStats
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet, output_rows, simulate


def test_fig2_round_order():
    """Fig. 2's numbering: each round every node spawns its next child,
    so the node count at most doubles per round."""
    created = round_visit_order(levels=3)
    assert created[()] == 0
    assert created[(0,)] == 1          # root's best correction: round 1
    assert created[(1,)] == 2          # root's 2nd: round 2
    assert created[(0, 0)] == 2        # node (0,)'s best: round 2
    assert created[(0, 0, 0)] == 3     # leftmost path grows 1/round
    assert created[(0, 1)] == 3        # (0,)'s 2nd correction
    assert created[(1, 0)] == 3
    assert created[(1, 1)] == 4
    # doubling: #nodes created by end of round r is <= 2^r
    for r in range(1, 4):
        count = sum(1 for v in created.values() if v <= r)
        assert count <= 2 ** r


def test_fig2_first_solution_depths():
    """Paper: 'the first possible solution triple is found in a tree
    with 3 nodes (completed half way through the 3rd round)' — i.e. the
    leftmost depth-3 path completes in round 3."""
    created = round_visit_order(levels=4)
    assert created[(0, 0, 0)] == 3
    assert created[(0, 0, 0, 0)] == 4


def _tree_for(c17, target=1, **config_kwargs):
    workload = inject_stuck_at_faults(c17, target, seed=2)
    patterns = PatternSet.random(5, 256, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(c17, patterns, device_out)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, **config_kwargs)
    return DecisionTree(state, target, HLevel(0.1, 0.3, 0.5), config)


@pytest.mark.parametrize("traversal", ["rounds", "dfs", "bfs"])
def test_all_traversals_find_single_fault(c17, traversal):
    tree = _tree_for(c17, 1)
    solutions = tree.run(stop_at_first=True, traversal=traversal)
    assert solutions
    assert solutions[0].size == 1
    assert solutions[0].netlist is not None


def test_node_cap_respected(c17):
    tree = _tree_for(c17, 2, max_nodes=3)
    tree.run(stop_at_first=False)
    assert tree.stats.nodes <= 4  # cap checked before each apply


def test_deadline_respected(c17):
    import time
    tree = _tree_for(c17, 2)
    tree.deadline = time.perf_counter() - 1.0  # already expired
    solutions = tree.run(stop_at_first=True)
    assert not solutions
    assert tree.stats.truncated


def test_expand_records_phase_times(c17):
    tree = _tree_for(c17, 1)
    tree.expand(tree.root)
    assert tree.root.expanded
    assert tree.stats.diag_time >= 0.0
    assert tree.stats.corr_time >= 0.0
    assert tree.root.pending  # a single fault always yields candidates


def test_duplicate_sets_not_reported_twice(c17):
    tree = _tree_for(c17, 2)
    solutions = tree.run(stop_at_first=False)
    keys = [s.key for s in solutions]
    assert len(keys) == len(set(keys))
