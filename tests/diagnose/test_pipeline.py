"""Staged pipeline core: session, stages, config validation, tracing."""

import io
import json

import pytest

from repro.circuit import bench_io, generators
from repro.cli import main
from repro.diagnose import (STAGE_ORDER, TRACE_SCHEMA, DiagnosisConfig,
                            DiagnosisSession, FunctionStage, HLevel,
                            IncrementalDiagnoser, Mode, StageRecord,
                            TraceWriter, run_stages, select_strategy,
                            validate_trace_events, validate_trace_file)
from repro.diagnose import clock
from repro.diagnose.pipeline import ExactStuckAtStrategy, LadderStrategy
from repro.diagnose.report import EngineStats
from repro.errors import DiagnosisError
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


def scrub(stages, drop_info=()):
    """Stage records minus wall-clock (a measurement) and any ``info``
    keys that echo the config under comparison (e.g. ``jobs``)."""
    out = []
    for rec in stages:
        rec = {k: v for k, v in rec.items() if k != "wall_s"}
        rec["info"] = {k: v for k, v in rec["info"].items()
                       if k not in drop_info}
        out.append(rec)
    return out


# ----------------------------------------------------------------------
# DiagnosisConfig.validate
# ----------------------------------------------------------------------
def test_validate_returns_self_on_good_config():
    config = DiagnosisConfig()
    assert config.validate() is config


def test_validate_coerces_mode_string():
    config = DiagnosisConfig(mode="stuck-at")
    config.validate()
    assert config.mode is Mode.STUCK_AT


@pytest.mark.parametrize("kwargs,needle", [
    ({"mode": "sideways"}, "valid modes"),
    ({"mode": Mode.DESIGN_ERROR, "exact": True}, "exact=True"),
    ({"traversal": "zigzag"}, "traversal"),
    ({"max_errors": 0}, "max_errors"),
    ({"jobs": 0}, "jobs"),
    ({"jobs": 2.5}, "jobs"),
    ({"pathtrace_samples": 0}, "pathtrace_samples"),
    ({"max_nodes": 0}, "max_nodes"),
    ({"worker_budget": -1}, "worker_budget"),
    ({"candidate_fraction": 0.0}, "candidate_fraction"),
    ({"candidate_fraction": 1.5}, "candidate_fraction"),
    ({"theorem1_safety": 0.0}, "theorem1_safety"),
    ({"h3_exact": 1.5}, "h3_exact"),
    ({"time_budget": 0}, "time_budget"),
    ({"schedule": ["not-a-level"]}, "HLevel"),
    ({"schedule": [HLevel(0.3, 0.7, 1.5)]}, "[0, 1]"),
])
def test_validate_rejects(kwargs, needle):
    with pytest.raises(DiagnosisError) as excinfo:
        DiagnosisConfig(**kwargs).validate()
    assert needle in str(excinfo.value)


def test_validate_allows_ablation_zero_heuristics():
    # bench/ablation.py disables heuristics by zeroing them.
    DiagnosisConfig(schedule=[HLevel(0.3, 0.0, 0.0)]).validate()


def test_validate_seq_prescreen_needs_sequential_engine():
    config = DiagnosisConfig(seq_prescreen=True)
    config.validate()                      # entry point unknown: fine
    config.validate(sequential=True)       # TimeFrameDiagnoser: fine
    with pytest.raises(DiagnosisError, match="seq_prescreen"):
        config.validate(sequential=False)  # combinational engine: no


def test_engine_rejects_invalid_config(c17):
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=True)
    patterns = PatternSet.random(c17.num_inputs, 64, seed=0)
    with pytest.raises(DiagnosisError, match="exact=True"):
        IncrementalDiagnoser(c17, c17.copy(), patterns, config)


# ----------------------------------------------------------------------
# stage records & composition
# ----------------------------------------------------------------------
def test_stage_record_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown stage"):
        StageRecord("frobnicate")


def test_stage_record_to_dict_shape():
    record = StageRecord("ingest", target=2, items_in=7)
    record.items_out = 3
    record.info = {"k": 1}
    assert record.to_dict() == {"stage": "ingest", "target": 2,
                                "in": 7, "out": 3, "info": {"k": 1},
                                "wall_s": 0.0}


def test_function_stage_composition():
    session = DiagnosisSession(DiagnosisConfig())
    session.begin_run(mode="unit")

    def double(session, payload, record):
        record.items_in = payload
        record.items_out = payload * 2
        return payload * 2

    out = run_stages(session, [FunctionStage("ingest", double),
                               FunctionStage("search", double)],
                     payload=3)
    assert out == 12
    assert [(r["stage"], r["in"], r["out"]) for r in
            session.stats.stages] == [("ingest", 3, 6), ("search", 6, 12)]


def test_stage_recorded_even_when_body_raises():
    session = DiagnosisSession(DiagnosisConfig())
    with pytest.raises(RuntimeError):
        with session.stage("ingest"):
            raise RuntimeError("boom")
    assert session.stats.stages[-1]["stage"] == "ingest"


def test_select_strategy():
    exact = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True)
    assert isinstance(select_strategy(exact), ExactStuckAtStrategy)
    first = DiagnosisConfig(mode=Mode.STUCK_AT, exact=False)
    assert isinstance(select_strategy(first), LadderStrategy)
    dedc = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False)
    assert isinstance(select_strategy(dedc), LadderStrategy)


def test_engine_stats_merge_concatenates_stages():
    a, b = EngineStats(), EngineStats()
    a.stages.append({"stage": "ingest"})
    b.stages.append({"stage": "search"})
    a.merge(b)
    assert [r["stage"] for r in a.stages] == ["ingest", "search"]


# ----------------------------------------------------------------------
# determinism of the stage records
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def exact_workload():
    spec = generators.random_dag(5, 30, 3, seed=0)
    workload = inject_stuck_at_faults(spec, 2, seed=7)
    patterns = PatternSet.random(5, 256, seed=1)
    return spec, workload.impl, patterns


def run_stage_records(spec, impl, patterns, **kwargs):
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, **kwargs)
    result = IncrementalDiagnoser(impl, spec, patterns, config).run()
    return result.stats.stages


def test_stage_records_identical_jobs_1_vs_4(exact_workload):
    spec, impl, patterns = exact_workload
    serial = run_stage_records(spec, impl, patterns, jobs=1)
    sharded = run_stage_records(spec, impl, patterns, jobs=4)
    # ``info.jobs`` echoes the config knob under comparison; everything
    # else — counts, node totals, shard plans — must match exactly.
    assert (scrub(serial, drop_info=("jobs",))
            == scrub(sharded, drop_info=("jobs",)))


def test_run_is_repeatable(exact_workload):
    spec, impl, patterns = exact_workload
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2)
    diag = IncrementalDiagnoser(impl, spec, patterns, config)
    first = diag.run()
    second = diag.run()
    assert ([s.describe() for s in first.solutions]
            == [s.describe() for s in second.solutions])
    assert scrub(first.stats.stages) == scrub(second.stats.stages)


def test_stage_sequence_follows_canonical_order(exact_workload):
    spec, impl, patterns = exact_workload
    stages = [r["stage"] for r in
              run_stage_records(spec, impl, patterns)]
    assert stages[0] == "ingest"
    assert stages[-1] == "report"
    assert set(stages) <= set(STAGE_ORDER)


# ----------------------------------------------------------------------
# trace stream
# ----------------------------------------------------------------------
def test_trace_stream_schema_valid(exact_workload):
    spec, impl, patterns = exact_workload
    buf = io.StringIO()
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2)
    IncrementalDiagnoser(impl, spec, patterns, config,
                         trace=TraceWriter(buf)).run()
    events = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert validate_trace_events(events) == []
    assert events[0]["event"] == "run-start"
    assert events[0]["schema"] == TRACE_SCHEMA
    assert events[-1]["event"] == "run-end"
    # the setup stages recorded at construction appear after run-start
    assert [e["stage"] for e in events[1:3]] == ["ingest", "bitlists"]


@pytest.mark.parametrize("events,needle", [
    ([], "empty trace"),
    ([{"seq": 0, "event": "run-end", "found": True, "solutions": 1,
       "nodes": 1, "truncated": False, "total_s": 0.1}],
     "first event must be run-start"),
    ([{"seq": 0, "event": "run-start", "schema": TRACE_SCHEMA}],
     "last event must be run-end"),
    ([{"seq": 0, "event": "run-start", "schema": "bogus/9"},
      {"seq": 1, "event": "run-end", "found": False, "solutions": 0,
       "nodes": 0, "truncated": False, "total_s": 0.0}],
     "schema"),
    ([{"seq": 0, "event": "run-start", "schema": TRACE_SCHEMA},
      {"seq": 5, "event": "run-end", "found": False, "solutions": 0,
       "nodes": 0, "truncated": False, "total_s": 0.0}],
     "out of order"),
    ([{"seq": 0, "event": "run-start", "schema": TRACE_SCHEMA},
      {"seq": 1, "event": "stage", "stage": "frobnicate", "in": 0,
       "out": 0, "info": {}, "wall_s": 0.0},
      {"seq": 2, "event": "run-end", "found": False, "solutions": 0,
       "nodes": 0, "truncated": False, "total_s": 0.0}],
     "unknown stage"),
    ([{"seq": 0, "event": "run-start", "schema": TRACE_SCHEMA},
      {"seq": 1, "event": "stage", "stage": "ingest", "in": -2,
       "out": 0, "info": {}, "wall_s": 0.0},
      {"seq": 2, "event": "run-end", "found": False, "solutions": 0,
       "nodes": 0, "truncated": False, "total_s": 0.0}],
     "non-negative"),
    ([{"seq": 0, "event": "run-start", "schema": TRACE_SCHEMA},
      {"seq": 1, "event": "run-end", "found": False}],
     "run-end missing"),
])
def test_validate_trace_events_rejects(events, needle):
    errors = validate_trace_events(events)
    assert any(needle in err for err in errors), errors


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_trace_and_trace_check(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    trace_path = tmp_path / "run.trace"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "1", "--seed", "3"]) == 0
    capsys.readouterr()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--vectors", "256", "--trace", str(trace_path),
               "--format", "json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["stages"][0]["stage"] == "ingest"
    assert validate_trace_file(str(trace_path)) == []
    assert main(["trace-check", str(trace_path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_cli_trace_check_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.trace"
    bad.write_text('{"seq": 0, "event": "nonsense"}\n')
    assert main(["trace-check", str(bad)]) == 2
    assert "FAIL" in capsys.readouterr().out


def test_cli_diagnose_rejects_bad_flag_combo(tmp_path):
    spec_path = tmp_path / "spec.bench"
    bench_io.dump(generators.c17(), spec_path)
    with pytest.raises(SystemExit) as excinfo:
        main(["diagnose", str(spec_path), str(spec_path), "--jobs", "0"])
    assert "jobs" in str(excinfo.value)


# ----------------------------------------------------------------------
# clock helpers
# ----------------------------------------------------------------------
def test_clock_deadline_roundtrip():
    assert clock.deadline_in(None) is None
    assert clock.perf_to_wall(None) is None
    deadline = clock.deadline_in(60.0)
    assert not clock.expired(deadline)
    assert clock.expired(clock.now() - 1.0)
    assert not clock.expired(None)
    wall = clock.perf_to_wall(deadline)
    back = clock.wall_to_perf(wall)
    assert abs(back - deadline) < 0.5
