"""End-to-end engine behaviour in both protocols."""

import pytest

from repro.circuit import generators
from repro.diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                            diagnose, matches_truth, rectifies)
from repro.errors import DiagnosisError
from repro.faults import (ErrorType, inject_stuck_at_faults,
                          observable_design_error_workload)
from repro.sim import PatternSet
from repro.tgen import random_patterns


def fault_engine(spec, workload, patterns, **kwargs):
    """Fault-modeling direction: good netlist vs faulty device."""
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, **kwargs)
    return IncrementalDiagnoser(workload.impl, spec, patterns, config)


def test_single_fault_recovered_exactly(c17):
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 512, seed=9)
    result = fault_engine(c17, workload, patterns, max_errors=2).run()
    assert result.found
    assert result.min_size == 1
    assert any(matches_truth(s, workload.truth) for s in result.solutions)
    # every reported tuple must actually rectify (netlist attached)
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)


@pytest.mark.parametrize("count", [2, 3])
def test_multi_fault_tuples_all_valid(c17, count):
    workload = inject_stuck_at_faults(c17, count, seed=3)
    patterns = PatternSet.random(5, 512, seed=9)
    result = fault_engine(c17, workload, patterns,
                          max_errors=count).run()
    assert result.found
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)
    assert result.min_size <= count


def test_minimality_iterative_deepening(c17):
    """Two injected faults that alias to one equivalent fault must come
    back as size-1 tuples, never padded to size 2."""
    found_masked = False
    for seed in range(12):
        workload = inject_stuck_at_faults(c17, 2, seed=seed)
        patterns = PatternSet.random(5, 512, seed=9)
        result = fault_engine(c17, workload, patterns,
                              max_errors=2).run()
        if result.found and result.min_size == 1:
            found_masked = True
            assert all(s.size == 1 for s in result.solutions)
            break
    assert found_masked, "no masking case in 12 seeds (unexpected)"


def test_rectified_input_returns_empty(c17):
    patterns = PatternSet.random(5, 128, seed=0)
    config = DiagnosisConfig(mode=Mode.STUCK_AT)
    result = IncrementalDiagnoser(c17, c17, patterns, config).run()
    assert not result.found
    assert result.initial_failing == 0
    assert result.stats.nodes == 0


@pytest.mark.parametrize("etype", [
    ErrorType.GATE_REPLACEMENT,
    ErrorType.EXTRA_INVERTER,
    ErrorType.MISSING_INVERTER,
    ErrorType.EXTRA_INPUT_WIRE,
    ErrorType.MISSING_INPUT_WIRE,
    ErrorType.WRONG_INPUT_WIRE,
    ErrorType.EXTRA_GATE,
    ErrorType.MISSING_GATE,
])
def test_dedc_repairs_every_error_type(alu4, etype):
    """Each Abadir error class injected alone must be repairable."""
    patterns = random_patterns(alu4, 768, seed=5)
    workload = observable_design_error_workload(
        alu4, 1, patterns, seed=2, distribution={etype: 1.0})
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=2, time_budget=60.0)
    result = IncrementalDiagnoser(alu4, workload.impl, patterns,
                                  config).run()
    assert result.found, etype
    best = result.solutions[0]
    assert rectifies(alu4, best.netlist, patterns)


def test_dedc_three_errors(alu4):
    patterns = random_patterns(alu4, 768, seed=5)
    workload = observable_design_error_workload(alu4, 3, patterns,
                                                seed=11)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=4, time_budget=120.0)
    result = IncrementalDiagnoser(alu4, workload.impl, patterns,
                                  config).run()
    assert result.found
    assert rectifies(alu4, result.solutions[0].netlist, patterns)
    # §4.2 claim: applied corrections rank near the top of their nodes
    worst = max(r.rank_position for r in result.solutions[0].records)
    assert worst <= 10


def test_interface_mismatch_rejected(c17, alu4):
    patterns = PatternSet.random(5, 64, seed=0)
    with pytest.raises(DiagnosisError, match="inputs"):
        IncrementalDiagnoser(c17, alu4, patterns)


def test_sequential_impl_rejected(c17, s27):
    patterns = PatternSet.random(4, 64, seed=0)
    with pytest.raises(DiagnosisError, match="full-scan"):
        IncrementalDiagnoser(s27, s27, patterns)


def test_time_budget_respected(c17):
    import time
    workload = inject_stuck_at_faults(c17, 3, seed=0)
    patterns = PatternSet.random(5, 512, seed=9)
    t0 = time.perf_counter()
    result = fault_engine(c17, workload, patterns, max_errors=3,
                          time_budget=0.05).run()
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0  # budget short-circuits deeper levels


def test_diagnose_wrapper(c17):
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 512, seed=9)
    result = diagnose(workload.impl, c17, patterns, mode=Mode.STUCK_AT,
                      max_errors=1)
    assert result.found


def test_result_summary_readable(c17):
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 512, seed=9)
    result = fault_engine(c17, workload, patterns, max_errors=1).run()
    text = result.summary()
    assert "correction set" in text
    assert "site" in text


def test_stats_accumulate(c17):
    workload = inject_stuck_at_faults(c17, 2, seed=5)
    patterns = PatternSet.random(5, 512, seed=9)
    result = fault_engine(c17, workload, patterns, max_errors=2).run()
    stats = result.stats
    assert stats.nodes > 0
    assert stats.total_time > 0
    assert stats.levels_tried
    assert stats.diag_time >= 0 and stats.corr_time >= 0
