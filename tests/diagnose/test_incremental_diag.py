"""Incremental facts warming inside the diagnosis engine.

``DiagnosisConfig(incremental_facts=True)`` warms every expandable
child node's dataflow-facts bundle from its parent's via the edit
journal instead of recomputing at the child's pre-screen.  Every warm
repair is exact, so the *only* observable difference with the flag off
must be the ``facts_reused`` / ``facts_recomputed`` / ``delta_edits``
counters — solutions, node counts, prescreen drops and ladder rungs
are bit-identical.
"""

from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser, Mode
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


def run(spec, impl, patterns, **kwargs):
    config = DiagnosisConfig(**kwargs)
    return IncrementalDiagnoser(spec, impl, patterns, config).run()


def outcome(result):
    """Everything deterministic a run reports, minus the new counters."""
    return (
        [tuple(sorted(r.signature for r in s.records))
         for s in result.solutions],
        result.stats.nodes,
        result.stats.prescreen_dropped,
        result.stats.levels_tried,
    )


def facts_counters(result):
    stats = result.stats
    return (stats.facts_reused, stats.facts_recomputed,
            stats.delta_edits)


# ----------------------------------------------------------------------
# bit-identity: flag on vs flag off
# ----------------------------------------------------------------------
def test_exact_mode_bit_identical_and_counts_reuse(rca4):
    workload = inject_stuck_at_faults(rca4, 2, seed=3)
    patterns = PatternSet.random(rca4.num_inputs, 512, seed=9)
    on = run(workload.impl, rca4, patterns, mode=Mode.STUCK_AT,
             exact=True, max_errors=2, incremental_facts=True)
    off = run(workload.impl, rca4, patterns, mode=Mode.STUCK_AT,
              exact=True, max_errors=2, incremental_facts=False)
    assert on.found
    assert outcome(on) == outcome(off)
    assert on.stats.facts_reused > 0
    assert on.stats.delta_edits >= on.stats.facts_reused
    assert facts_counters(off) == (0, 0, 0)


def test_tree_mode_bit_identical_and_counts_reuse(rca4):
    workload = inject_stuck_at_faults(rca4, 2, seed=5)
    patterns = PatternSet.random(rca4.num_inputs, 512, seed=9)
    kwargs = dict(mode=Mode.STUCK_AT, exact=False, max_errors=2)
    on = run(workload.impl, rca4, patterns, incremental_facts=True,
             **kwargs)
    off = run(workload.impl, rca4, patterns, incremental_facts=False,
              **kwargs)
    assert outcome(on) == outcome(off)
    # warms fire only for children that may expand; a first-round hit
    # can legitimately leave the counter at zero, but the flag-off run
    # must never move it
    assert facts_counters(off) == (0, 0, 0)
    if on.stats.nodes > len(on.solutions):
        assert on.stats.facts_reused + on.stats.facts_recomputed > 0


def test_dedc_mode_bit_identical(alu4):
    from repro.faults import observable_design_error_workload
    from repro.tgen import random_patterns
    patterns = random_patterns(alu4, 512, seed=5)
    workload = observable_design_error_workload(alu4, 2, patterns,
                                                seed=7)
    kwargs = dict(mode=Mode.DESIGN_ERROR, exact=False, max_errors=2,
                  time_budget=120.0)
    on = run(alu4, workload.impl, patterns, incremental_facts=True,
             **kwargs)
    off = run(alu4, workload.impl, patterns, incremental_facts=False,
              **kwargs)
    assert outcome(on) == outcome(off)
    assert facts_counters(off) == (0, 0, 0)


# ----------------------------------------------------------------------
# counter gating
# ----------------------------------------------------------------------
def test_counters_stay_zero_without_prescreen(rca4):
    workload = inject_stuck_at_faults(rca4, 2, seed=3)
    patterns = PatternSet.random(rca4.num_inputs, 512, seed=9)
    result = run(workload.impl, rca4, patterns, mode=Mode.STUCK_AT,
                 exact=True, max_errors=2, static_prescreen=False,
                 incremental_facts=True)
    assert facts_counters(result) == (0, 0, 0)


# ----------------------------------------------------------------------
# scheduler determinism contract extends to the new counters
# ----------------------------------------------------------------------
def test_counters_identical_serial_vs_pool(rca4):
    workload = inject_stuck_at_faults(rca4, 2, seed=3)
    patterns = PatternSet.random(rca4.num_inputs, 512, seed=9)
    serial = run(workload.impl, rca4, patterns, mode=Mode.STUCK_AT,
                 exact=True, max_errors=2, jobs=1)
    pooled = run(workload.impl, rca4, patterns, mode=Mode.STUCK_AT,
                 exact=True, max_errors=2, jobs=2)
    assert outcome(serial) == outcome(pooled)
    assert facts_counters(serial) == facts_counters(pooled)
    assert serial.stats.facts_reused > 0
