"""Sequential diagnosis via time-frame expansion."""

import pytest

from repro.circuit import LineTable, generators
from repro.diagnose.timeframe import (TimeFrameDiagnoser,
                                      random_sequences)
from repro.errors import DiagnosisError
from repro.faults import inject_stuck_at_faults


def observable_seq_workload(spec, count, frames, sequences,
                            start_seed=0):
    """First seed whose injected faults are observable in the window."""
    for seed in range(start_seed, start_seed + 30):
        workload = inject_stuck_at_faults(spec, count, seed=seed)
        probe = TimeFrameDiagnoser(spec, workload.impl, sequences,
                                   frames=frames, max_faults=0,
                                   max_nodes=0, time_budget=1)
        if probe._root.num_err > 0:
            return workload
    pytest.skip("no observable sequential workload found")


def test_single_fault_sequential_diagnosis(s27):
    frames = 8
    sequences = random_sequences(s27, 96, frames, seed=1)
    workload = observable_seq_workload(s27, 1, frames, sequences)
    diag = TimeFrameDiagnoser(s27, workload.impl, sequences,
                              frames=frames, max_faults=1)
    result = diag.run()
    assert result.found
    truth = workload.truth[0]
    truth_driver = truth.site.split("->", 1)[0]
    drivers = {site.split("->", 1)[0]
               for site in result.distinct_sites()}
    assert truth_driver in drivers
    # every returned tuple has the right polarity format
    for solution in result.solutions:
        for record in solution.records:
            assert record.kind in ("sa0", "sa1")


def test_double_fault_sequential_diagnosis():
    seq = generators.random_sequential(5, 60, 4, 4, seed=9)
    frames = 6
    sequences = random_sequences(seq, 64, frames, seed=2)
    workload = observable_seq_workload(seq, 2, frames, sequences)
    diag = TimeFrameDiagnoser(seq, workload.impl, sequences,
                              frames=frames, max_faults=2,
                              time_budget=45.0)
    result = diag.run()
    assert result.found  # some explaining tuple within the window


def test_combinational_input_rejected(c17):
    with pytest.raises(DiagnosisError, match="sequential"):
        TimeFrameDiagnoser(c17, c17, [], frames=2)


def test_no_fault_returns_empty(s27):
    frames = 4
    sequences = random_sequences(s27, 32, frames, seed=0)
    diag = TimeFrameDiagnoser(s27, s27.copy(), sequences, frames=frames)
    result = diag.run()
    assert not result.found
    assert result.stats.nodes == 0
