"""Sequential diagnosis via time-frame expansion."""

import pytest

from repro.circuit import LineTable, generators
from repro.diagnose.timeframe import (TimeFrameDiagnoser,
                                      random_sequences)
from repro.errors import DiagnosisError
from repro.faults import inject_stuck_at_faults


def observable_seq_workload(spec, count, frames, sequences,
                            start_seed=0):
    """First seed whose injected faults are observable in the window."""
    for seed in range(start_seed, start_seed + 30):
        workload = inject_stuck_at_faults(spec, count, seed=seed)
        probe = TimeFrameDiagnoser(spec, workload.impl, sequences,
                                   frames=frames, max_faults=0,
                                   max_nodes=0, time_budget=1)
        if probe._root.num_err > 0:
            return workload
    pytest.skip("no observable sequential workload found")


def test_single_fault_sequential_diagnosis(s27):
    frames = 8
    sequences = random_sequences(s27, 96, frames, seed=1)
    workload = observable_seq_workload(s27, 1, frames, sequences)
    diag = TimeFrameDiagnoser(s27, workload.impl, sequences,
                              frames=frames, max_faults=1)
    result = diag.run()
    assert result.found
    truth = workload.truth[0]
    truth_driver = truth.site.split("->", 1)[0]
    drivers = {site.split("->", 1)[0]
               for site in result.distinct_sites()}
    assert truth_driver in drivers
    # every returned tuple has the right polarity format
    for solution in result.solutions:
        for record in solution.records:
            assert record.kind in ("sa0", "sa1")


def test_double_fault_sequential_diagnosis():
    seq = generators.random_sequential(5, 60, 4, 4, seed=9)
    frames = 6
    sequences = random_sequences(seq, 64, frames, seed=2)
    workload = observable_seq_workload(seq, 2, frames, sequences)
    diag = TimeFrameDiagnoser(seq, workload.impl, sequences,
                              frames=frames, max_faults=2,
                              time_budget=45.0)
    result = diag.run()
    assert result.found  # some explaining tuple within the window


def test_combinational_input_rejected(c17):
    with pytest.raises(DiagnosisError, match="sequential"):
        TimeFrameDiagnoser(c17, c17, [], frames=2)


def test_no_fault_returns_empty(s27):
    frames = 4
    sequences = random_sequences(s27, 32, frames, seed=0)
    diag = TimeFrameDiagnoser(s27, s27.copy(), sequences, frames=frames)
    result = diag.run()
    assert not result.found
    assert result.stats.nodes == 0


def planted_masked_spec():
    """Observable hbuf path plus a suspect cone gated by a register
    that provably never leaves reset 0 — everything behind the gate is
    sequentially masked and fair game for the pre-screen."""
    from repro.circuit import GateType, Netlist

    nl = Netlist("masked")
    h = nl.add_input("h")
    e = nl.add_input("e")
    x = nl.add_input("x")
    y = nl.add_input("y")
    r = nl.add_gate("r", GateType.DFF, [x])
    d = nl.add_gate("d", GateType.AND, [r, x])
    nl.gates[r].fanin = [d]
    g = nl.add_gate("g", GateType.AND, [x, y])
    m = nl.add_gate("m", GateType.AND, [g, r])
    hbuf = nl.add_gate("hbuf", GateType.BUF, [h])
    live = nl.add_gate("live", GateType.DFF, [e])
    o1 = nl.add_gate("o1", GateType.OR, [hbuf, m])
    o2 = nl.add_gate("o2", GateType.OR, [o1, live])
    nl.set_outputs([o2])
    nl._dirty()
    return nl


def test_seq_prescreen_sound_and_productive():
    from repro.circuit import GateType
    from repro.diagnose.config import DiagnosisConfig

    spec = planted_masked_spec()
    device = planted_masked_spec()
    hb = device.index_of("hbuf")
    device.gates[hb].gtype = GateType.CONST1
    device.gates[hb].fanin = []
    device._dirty()
    frames = 6
    sequences = random_sequences(spec, 24, frames, seed=1)

    def run(config):
        return TimeFrameDiagnoser(spec, device, sequences,
                                  frames=frames, max_faults=2,
                                  config=config).run()

    off = run(None)
    on = run(DiagnosisConfig(seq_prescreen=True))
    # soundness: identical solution sets with the screen on and off
    def key(res):
        return sorted(frozenset(r.signature for r in sol.records)
                      for sol in res.solutions)

    assert key(on) == key(off)
    assert on.found
    # productivity: the masked cone was planted to be dropped
    assert on.stats.prescreen_dropped > 0
    assert off.stats.prescreen_dropped == 0
    assert on.stats.nodes < off.stats.nodes


def test_seq_prescreen_default_off():
    from repro.diagnose.config import DiagnosisConfig

    assert DiagnosisConfig().seq_prescreen is False
    spec = planted_masked_spec()
    diag = TimeFrameDiagnoser(spec, spec, random_sequences(spec, 4, 3),
                              frames=3, config=DiagnosisConfig())
    assert diag._masked_lines == frozenset()
