"""Configuration: relaxation ladders and knobs."""

import pytest

from repro.diagnose.config import (DiagnosisConfig, FLOOR, HLevel, Mode,
                                   default_schedule)


def test_hlevel_str():
    assert str(HLevel(0.3, 0.7, 0.95)) == "0.3/0.7/0.95"
    assert str(HLevel(1.0, 1.0, 1.0)) == "1/1/1"


def test_single_error_ladder_starts_strict():
    ladder = default_schedule(1)
    assert ladder[0] == HLevel(1.0, 1.0, 1.0)
    assert ladder[-1] == FLOOR


@pytest.mark.parametrize("num_errors", [1, 2, 3, 4, 6])
def test_ladders_monotonically_relax(num_errors):
    ladder = default_schedule(num_errors)
    for earlier, later in zip(ladder, ladder[1:]):
        assert later.h1 <= earlier.h1
        assert later.h2 <= earlier.h2
        assert later.h3 <= earlier.h3
    assert ladder[-1] == FLOOR


def test_h1_relaxes_before_h2_h3():
    """§3.3: 'h1 reduces first before h2 and h3 do since these two
    parameters are error independent' — a high-cardinality ladder opens
    with h1 already below the single-error opening h2/h3."""
    deep = default_schedule(4)[0]
    shallow = default_schedule(1)[0]
    assert deep.h1 < shallow.h1
    assert deep.h2 >= FLOOR.h2
    assert deep.h3 >= FLOOR.h3


def test_explicit_schedule_override():
    config = DiagnosisConfig(schedule=[HLevel(0.5, 0.5, 0.5)])
    assert config.ladder(3) == [HLevel(0.5, 0.5, 0.5)]
    default = DiagnosisConfig()
    assert default.ladder(2) == default_schedule(2)


def test_config_defaults_match_paper_ranges():
    config = DiagnosisConfig()
    # "we select the top 5-20% of these lines" (§3.1)
    assert 0.05 <= config.candidate_fraction <= 0.20
    # paper: <=9 rounds observed, allowing up to 256 nodes
    assert config.max_rounds == 9
    assert config.mode is Mode.STUCK_AT
    assert config.exact
