"""Heuristic 1: invert-and-propagate correcting potential."""

from hypothesis import given, settings, strategies as st

from repro.circuit import generators
from repro.diagnose import (DiagnosisState, correcting_potential,
                            rank_lines)
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet, output_rows, simulate


def state_for(spec, count=1, seed=0, nbits=256):
    workload = inject_stuck_at_faults(spec, count, seed=seed)
    patterns = PatternSet.random(spec.num_inputs, nbits, seed=seed + 1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    return DiagnosisState(spec, patterns, device_out), workload


def truth_line(state, spec, workload):
    record = workload.truth[0]
    return next(l.index for l in state.table
                if l.describe(spec) == record.site)


def test_single_fault_line_has_full_potential(c17):
    """Flipping the actual fault line's failing values emulates the
    fault exactly, so its potential is maximal (score 1.0)."""
    state, workload = state_for(c17, 1, seed=3)
    line = truth_line(state, c17, workload)
    pot = correcting_potential(state, line)
    assert pot.score == 1.0
    assert pot.rectified_vectors == state.num_err


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3_000))
def test_potential_score_bounds(seed):
    spec = generators.random_dag(5, 40, 3, seed=seed % 4)
    state, _ = state_for(spec, 2, seed=seed)
    if state.num_err == 0:
        return
    for line in list(range(len(state.table)))[::5]:
        pot = correcting_potential(state, line)
        assert 0.0 <= pot.score <= 1.0
        assert 0 <= pot.fixed_pairs <= state.num_err_pairs


def test_rank_lines_orders_and_filters(c17):
    state, workload = state_for(c17, 1, seed=6)
    all_lines = list(range(len(state.table)))
    ranked = rank_lines(state, all_lines, h1=0.0)
    scores = [p.fixed_pairs for p in ranked]
    assert scores == sorted(scores, reverse=True)
    strict = rank_lines(state, all_lines, h1=1.0)
    assert all(p.score >= 1.0 for p in strict)
    assert len(strict) <= len(ranked)
    # the true fault line survives the strictest threshold
    line = truth_line(state, c17, workload)
    assert line in [p.line for p in strict]
