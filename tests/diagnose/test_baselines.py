"""Baselines, and agreement between the incremental engine and the
brute-force oracle."""

import pytest

from repro.circuit import generators
from repro.diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                            dictionary_diagnosis,
                            exhaustive_multifault_diagnosis)
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


def test_dictionary_finds_single_fault(c17):
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.exhaustive(5)
    matches = dictionary_diagnosis(c17, workload.impl, patterns)
    assert matches
    from repro.circuit import LineTable
    table = LineTable(c17)
    sites = {f"{table.describe(m.line)}/sa{m.value}" for m in matches}
    truth = workload.truth[0]
    assert f"{truth.site}/{truth.kind}" in {s.replace("sa", "sa")
                                            for s in sites} or any(
        truth.site.split("->")[0] == table.describe(m.line).split("->")[0]
        and int(truth.kind[-1]) == m.value for m in matches)


def test_dictionary_empty_for_double_fault_usually(c17):
    """A two-fault behaviour usually matches no single-fault signature
    (when it does, that is masking — also fine).  Check determinism and
    type, not a universal claim."""
    workload = inject_stuck_at_faults(c17, 2, seed=0)
    patterns = PatternSet.exhaustive(5)
    a = dictionary_diagnosis(c17, workload.impl, patterns)
    b = dictionary_diagnosis(c17, workload.impl, patterns)
    assert [m.key() for m in a] == [m.key() for m in b]


def small_circuit():
    from repro.circuit import GateType, Netlist
    nl = Netlist("small")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    g1 = nl.add_gate("g1", GateType.NAND, [a, b])
    g2 = nl.add_gate("g2", GateType.OR, [g1, c])
    g3 = nl.add_gate("g3", GateType.XOR, [g1, g2])
    nl.set_outputs([g2, g3])
    return nl


def test_exhaustive_baseline_validity():
    spec = small_circuit()
    workload = inject_stuck_at_faults(spec, 1, seed=2)
    patterns = PatternSet.exhaustive(3)
    # fault-model the good netlist toward the faulty device
    solutions = exhaustive_multifault_diagnosis(workload.impl, spec,
                                                patterns, max_faults=1)
    assert solutions
    truth = workload.truth[0]
    assert any(truth.site in {r.site for r in s.records}
               for s in solutions)


def test_exhaustive_baseline_size_cap():
    circuit = generators.alu(4)
    workload = inject_stuck_at_faults(circuit, 1, seed=0)
    with pytest.raises(ValueError, match="exceed"):
        exhaustive_multifault_diagnosis(workload.impl, circuit,
                                        PatternSet.random(11, 64),
                                        max_lines=10)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_engine_agrees_with_oracle_single_fault(seed):
    """On a small circuit with exhaustive vectors, the engine's exact
    mode must return exactly the oracle's single-fault tuple set."""
    spec = small_circuit()
    workload = inject_stuck_at_faults(spec, 1, seed=seed)
    patterns = PatternSet.exhaustive(3)
    oracle = exhaustive_multifault_diagnosis(workload.impl, spec,
                                             patterns, max_faults=1)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=1)
    engine = IncrementalDiagnoser(workload.impl, spec, patterns, config)
    result = engine.run()
    got = {s.key for s in result.solutions}
    want = {s.key for s in oracle}
    # engine tuples must all be valid (subset of oracle); completeness
    # must cover the oracle set on this easy instance
    assert got <= want
    assert got == want, (got, want)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engine_tuples_subset_of_oracle_double_fault(seed):
    spec = small_circuit()
    workload = inject_stuck_at_faults(spec, 2, seed=seed)
    patterns = PatternSet.exhaustive(3)
    oracle = exhaustive_multifault_diagnosis(workload.impl, spec,
                                             patterns, max_faults=2)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=2, max_nodes=20_000)
    engine = IncrementalDiagnoser(workload.impl, spec, patterns, config)
    result = engine.run()
    got = {s.key for s in result.solutions}
    want = {s.key for s in oracle}
    assert got
    assert got <= want
    # the paper claims "nearly all": on this tiny circuit demand >= 80%
    assert len(got) >= 0.8 * len(want), (len(got), len(want))
