"""Theorem 1 and the heuristic 2/3 screens."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import GateType, Netlist, generators
from repro.diagnose import (DiagnosisState, evaluate_correction,
                            screen_verr, theorem1_bound)
from repro.faults import inject_stuck_at_faults
from repro.faults.models import Correction, CorrectionKind
from repro.sim import PatternSet, output_rows, simulate


def test_theorem1_bound_values():
    assert theorem1_bound(100, 1) == 100
    assert theorem1_bound(100, 2) == 50
    assert theorem1_bound(100, 3) == 34   # ceil
    assert theorem1_bound(0, 3) == 0
    with pytest.raises(ValueError):
        theorem1_bound(10, 0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5_000), count=st.integers(1, 4))
def test_theorem1_holds_for_injected_faults(seed, count):
    """Property (Theorem 1): at least one injected fault's correction
    complements >= |Verr| / N bits of its line's Verr bit-list."""
    spec = generators.random_dag(6, 60, 4, seed=seed % 5)
    workload = inject_stuck_at_faults(spec, count, seed=seed)
    patterns = PatternSet.random(6, 320, seed=seed + 1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(spec, patterns, device_out)
    if state.num_err == 0:
        return
    bound = theorem1_bound(state.num_err, count)
    best = 0
    for record in workload.truth:
        line = next((l for l in state.table
                     if l.describe(spec) == record.site), None)
        if line is None:
            continue
        kind = (CorrectionKind.STUCK_AT_1 if record.kind == "sa1"
                else CorrectionKind.STUCK_AT_0)
        complemented = screen_verr(state, Correction(line.index, kind), 1)
        if complemented:
            best = max(best, complemented)
    assert best >= bound, (seed, count, best, bound, state.num_err)


def _two_fault_state(c17, seed=0):
    workload = inject_stuck_at_faults(c17, 2, seed=seed)
    patterns = PatternSet.random(5, 256, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    return DiagnosisState(c17, patterns, device_out)


def test_screen_rejects_noop_corrections(c17):
    state = _two_fault_state(c17)
    # a stuck-at matching the line's constant behaviour flips nothing
    nl = Netlist("const")
    a = nl.add_input("a")
    zero = nl.add_gate("z", GateType.CONST0)
    g = nl.add_gate("g", GateType.OR, [a, zero])
    nl.set_outputs([g])
    patterns = PatternSet.from_vectors([[0], [1]])
    spec_out = ~simulate(nl, patterns)[[g]]
    st_ = DiagnosisState(nl, patterns, spec_out)
    z_line = st_.table.stem(zero).index
    assert screen_verr(st_, Correction(z_line,
                                       CorrectionKind.STUCK_AT_0), 0) \
        is None


def test_screen_threshold_monotone(c17):
    state = _two_fault_state(c17)
    corr = Correction(0, CorrectionKind.STUCK_AT_1)
    loose = screen_verr(state, corr, 1)
    if loose is not None:
        assert screen_verr(state, corr, loose) == loose
        assert screen_verr(state, corr, loose + 1) is None


def test_evaluate_correction_h3_rejects_destructive_fix(c17):
    """An insert-inverter on a primary output of a single-fault design
    corrupts roughly all passing vectors; h3 close to 1 must reject."""
    workload = inject_stuck_at_faults(c17, 1, seed=4)
    patterns = PatternSet.random(5, 256, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(c17, patterns, device_out)
    po_line = state.table.stem(c17.outputs[0]).index
    corr = Correction(po_line, CorrectionKind.INSERT_INVERTER)
    strict = evaluate_correction(state, corr, 1, h3=0.99)
    lax = evaluate_correction(state, corr, 1, h3=0.0)
    if lax is not None and lax.h3_score < 0.99:
        assert strict is None


def test_evaluate_correction_scores_true_fix(c17):
    """The actual fault's correction must fully qualify: h1 == 1 and
    h3 == 1 (fault-modeling the good netlist toward the device)."""
    workload = inject_stuck_at_faults(c17, 1, seed=7)
    patterns = PatternSet.random(5, 256, seed=1)
    device_out = output_rows(workload.impl,
                             simulate(workload.impl, patterns))
    state = DiagnosisState(c17, patterns, device_out)
    record = workload.truth[0]
    line = next(l for l in state.table
                if l.describe(c17) == record.site)
    kind = (CorrectionKind.STUCK_AT_1 if record.kind == "sa1"
            else CorrectionKind.STUCK_AT_0)
    sc = evaluate_correction(state, Correction(line.index, kind),
                             theorem1_bound(state.num_err, 1), h3=0.95)
    assert sc is not None
    assert sc.fixes_all
    assert sc.h1_score == 1.0
    assert sc.h3_score == 1.0


def test_fig1_scenario():
    """The paper's Fig. 1: with two reconverging errors, the valid fix
    for one error newly corrupts previously-correct vectors — so a
    hard-zero heuristic 3 would reject it (DESIGN.md experiment index).
    """
    nl = Netlist("fig1")
    a, b = nl.add_input("a"), nl.add_input("b")
    c, d = nl.add_input("c"), nl.add_input("d")
    l1 = nl.add_gate("l1", GateType.AND, [a, b])
    l2 = nl.add_gate("l2", GateType.OR, [c, d])
    g = nl.add_gate("G", GateType.AND, [l1, l2])
    nl.set_outputs([g])
    impl = nl.copy("fig1_bad")
    impl.set_gate_type(nl.index_of("l1"), GateType.NAND)
    impl.set_gate_type(nl.index_of("l2"), GateType.NOR)
    patterns = PatternSet.exhaustive(4)
    spec_out = output_rows(nl, simulate(nl, patterns))
    state = DiagnosisState(impl, patterns, spec_out)
    l1_line = state.table.stem(impl.index_of("l1")).index
    fix1 = Correction(l1_line, CorrectionKind.GATE_REPLACE,
                      new_type=GateType.AND)
    sc = evaluate_correction(state, fix1, 1, h3=0.0)
    assert sc is not None
    assert sc.outcome.broken_vectors > 0      # Fig. 1's phenomenon
    assert sc.h3_score < 1.0
    # and with an intolerant h3 the valid fix would be lost:
    assert evaluate_correction(state, fix1, 1, h3=1.0) is None
