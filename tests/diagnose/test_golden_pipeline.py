"""Golden bit-identity: the staged pipeline vs the pre-refactor engines.

The committed ``golden/pipeline_golden.json`` was captured from the
engines *before* they were rebuilt on ``DiagnosisSession``/stages.  The
refactor's contract is bit-identity: solutions and every deterministic
counter are functions of (netlist, patterns, config) only, so the
captures must match exactly — including ``jobs=4`` vs ``jobs=1`` and
incremental facts on vs off.
"""

import pytest

from tests.diagnose.golden_pipeline import capture_all, load_golden

GOLDEN = load_golden()


@pytest.fixture(scope="module")
def captured():
    return capture_all()


def test_schema_matches():
    assert GOLDEN["schema"] == "repro.golden_pipeline/1"


def test_no_cases_dropped(captured):
    assert sorted(captured["cases"]) == sorted(GOLDEN["cases"])


@pytest.mark.parametrize("key", sorted(GOLDEN["cases"]))
def test_case_bit_identical(captured, key):
    assert captured["cases"][key] == GOLDEN["cases"][key]
