"""End-to-end DEDC under each global traversal strategy."""

import pytest

from repro.diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                            rectifies)
from repro.faults import observable_design_error_workload
from repro.sim import PatternSet


@pytest.mark.parametrize("traversal", ["rounds", "dfs", "bfs"])
def test_dedc_single_error_any_traversal(c17, traversal):
    patterns = PatternSet.random(5, 512, seed=3)
    workload = observable_design_error_workload(c17, 1, patterns,
                                                seed=1)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=2, traversal=traversal,
                             time_budget=30.0)
    result = IncrementalDiagnoser(c17, workload.impl, patterns,
                                  config).run()
    assert result.found, traversal
    assert rectifies(c17, result.solutions[0].netlist, patterns)


@pytest.mark.parametrize("traversal", ["rounds", "dfs"])
def test_dedc_double_error_traversals(alu4, traversal):
    patterns = PatternSet.random(alu4.num_inputs, 512, seed=3)
    workload = observable_design_error_workload(alu4, 2, patterns,
                                                seed=1)
    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=3, traversal=traversal,
                             time_budget=45.0)
    result = IncrementalDiagnoser(alu4, workload.impl, patterns,
                                  config).run()
    assert result.found, traversal
