"""Static pre-screen soundness.

The acceptance bar: every suspect the pre-screen drops is confirmed
droppable by exhaustive simulation (complementing the line changes no
primary output on any vector), and diagnosis results on the seeded
examples are unchanged with the pre-screen on.
"""

import pytest

from repro.circuit import GateType, LineTable, Netlist, generators
from repro.diagnose import DiagnosisConfig, IncrementalDiagnoser
from repro.diagnose.bitlists import DiagnosisState
from repro.diagnose.screening import prescreen_suspects
from repro.faults import inject_stuck_at_faults
from repro.faults.models import (Correction, CorrectionKind,
                                 apply_correction)
from repro.sim import PatternSet
from repro.sim.logicsim import output_rows, simulate


def odc_xor_netlist() -> Netlist:
    """`mid` and `a` are ODC-blocked behind `dom`'s constant side input;
    the XOR output keeps path-trace flowing into the blocked region."""
    nl = Netlist("odcx")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c0 = nl.add_gate("c0", GateType.CONST0, [])
    buf = nl.add_gate("buf", GateType.BUF, [c0])
    mid = nl.add_gate("mid", GateType.NOT, [a])
    dom = nl.add_gate("dom", GateType.AND, [mid, buf])
    out = nl.add_gate("out", GateType.XOR, [dom, b])
    nl.set_outputs([out])
    return nl


def exhaustive_state(nl: Netlist) -> DiagnosisState:
    patterns = PatternSet.exhaustive(nl.num_inputs)
    spec_out = output_rows(nl, simulate(nl, patterns))
    return DiagnosisState(nl, patterns, spec_out)


def changes_any_output(nl: Netlist, table: LineTable, line: int,
                       kind: CorrectionKind) -> bool:
    """Exhaustive oracle: does tying the line alter any PO anywhere?"""
    patterns = PatternSet.exhaustive(nl.num_inputs)
    baseline = output_rows(nl, simulate(nl, patterns))
    tied = nl.copy()
    apply_correction(tied, table, Correction(line, kind))
    after = output_rows(tied, simulate(tied, patterns))
    return bool((baseline != after).any())


@pytest.mark.parametrize("build", [
    odc_xor_netlist,
    generators.c17,
    lambda: generators.ripple_carry_adder(4),
    lambda: generators.priority_encoder(6),
])
def test_dropped_suspects_confirmed_droppable(build):
    """Every drop is a proven no-op at every PO on every vector."""
    nl = build()
    state = exhaustive_state(nl)
    all_lines = list(range(len(state.table)))
    kept, dropped_count = prescreen_suspects(state, all_lines, deep=True)
    dropped = sorted(set(all_lines) - set(kept))
    assert dropped_count == len(dropped)
    for line in dropped:
        for kind in (CorrectionKind.STUCK_AT_0,
                     CorrectionKind.STUCK_AT_1):
            assert not changes_any_output(nl, state.table, line, kind), \
                f"pre-screen wrongly dropped {state.table.describe(line)}"


def test_prescreen_drops_blocked_lines():
    nl = odc_xor_netlist()
    state = exhaustive_state(nl)
    all_lines = list(range(len(state.table)))
    kept, dropped_count = prescreen_suspects(state, all_lines)
    assert dropped_count > 0
    dropped_drivers = {nl.gates[state.table[i].driver].name
                       for i in set(all_lines) - set(kept)}
    assert {"a", "mid"} <= dropped_drivers
    # the genuinely relevant suspects survive
    kept_drivers = {nl.gates[state.table[i].driver].name for i in kept}
    assert {"b", "dom", "out"} <= kept_drivers


@pytest.mark.parametrize("seed", range(8))
def test_prescreen_sound_on_random_circuits(seed):
    """Drops on random constant-rich netlists are exhaustively no-ops."""
    import random as pyrandom
    rng = pyrandom.Random(seed)
    nl = Netlist(f"r{seed}")
    for i in range(3):
        nl.add_input(f"pi{i}")
    for g in range(10):
        roll = rng.random()
        if roll < 0.15:
            nl.add_gate(f"g{g}", rng.choice((GateType.CONST0,
                                             GateType.CONST1)), [])
            continue
        gtype = rng.choice((GateType.AND, GateType.NAND, GateType.OR,
                            GateType.NOR, GateType.XOR, GateType.NOT,
                            GateType.BUF))
        pool = len(nl.gates)
        n_in = 1 if gtype in (GateType.NOT, GateType.BUF) else 2
        nl.add_gate(f"g{g}", gtype,
                    [rng.randrange(pool) for _ in range(n_in)])
    fanouts = nl.fanouts()
    sinks = [g.index for g in nl.gates
             if not fanouts[g.index] and g.gtype is not GateType.INPUT]
    nl.set_outputs(sinks or [len(nl.gates) - 1])

    state = exhaustive_state(nl)
    all_lines = list(range(len(state.table)))
    kept, _count = prescreen_suspects(state, all_lines, deep=True)
    for line in sorted(set(all_lines) - set(kept)):
        for kind in (CorrectionKind.STUCK_AT_0,
                     CorrectionKind.STUCK_AT_1):
            assert not changes_any_output(nl, state.table, line, kind)


# ----------------------------------------------------------------------
# end-to-end: diagnosis results unchanged, work reduced
# ----------------------------------------------------------------------
def run_engine(device, good, patterns, prescreen: bool):
    config = DiagnosisConfig(max_errors=2,
                             static_prescreen=prescreen, seed=3)
    engine = IncrementalDiagnoser(device, good, patterns, config)
    return engine.run()


def solution_keys(result):
    return sorted(sorted(s.key) for s in result.solutions)


def test_engine_results_unchanged_and_suspects_dropped():
    good = odc_xor_netlist()
    table = LineTable(good)
    device = good.copy()
    b_stem = next(i for i in range(len(table))
                  if good.gates[table[i].driver].name == "b"
                  and table[i].is_stem)
    apply_correction(device, table, Correction(b_stem,
                                               CorrectionKind.STUCK_AT_0))
    patterns = PatternSet.exhaustive(good.num_inputs)
    with_screen = run_engine(device, good, patterns, True)
    without = run_engine(device, good, patterns, False)
    assert with_screen.found and without.found
    assert solution_keys(with_screen) == solution_keys(without)
    assert with_screen.stats.prescreen_dropped > 0
    assert without.stats.prescreen_dropped == 0
    assert with_screen.stats.nodes <= without.stats.nodes


@pytest.mark.parametrize("circuit,faults,seed", [
    ("c17", 1, 0), ("c17", 2, 1), ("rca4", 1, 2), ("rca4", 2, 5),
])
def test_engine_results_unchanged_on_seeded_examples(circuit, faults,
                                                     seed):
    good = (generators.c17() if circuit == "c17"
            else generators.ripple_carry_adder(4))
    workload = inject_stuck_at_faults(good, faults, seed=seed)
    patterns = PatternSet.exhaustive(good.num_inputs)
    with_screen = run_engine(workload.impl, good, patterns, True)
    without = run_engine(workload.impl, good, patterns, False)
    assert solution_keys(with_screen) == solution_keys(without)
    assert (with_screen.stats.truncated
            == without.stats.truncated is False)


def test_tree_mode_results_unchanged():
    """The DEDC tree path applies the pre-screen too."""
    from repro.diagnose import Mode
    good = generators.c17()
    workload = inject_stuck_at_faults(good, 1, seed=4)
    patterns = PatternSet.exhaustive(good.num_inputs)
    results = []
    for prescreen in (True, False):
        config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=False,
                                 max_errors=2,
                                 static_prescreen=prescreen, seed=3)
        engine = IncrementalDiagnoser(workload.impl, good, patterns,
                                      config)
        results.append(engine.run())
    assert solution_keys(results[0]) == solution_keys(results[1])
