"""Ranked fault-dictionary diagnosis."""

import pytest

from repro.circuit import generators
from repro.diagnose.dictionary import FaultDictionary
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


@pytest.fixture(scope="module")
def c17_dict():
    circuit = generators.c17()
    patterns = PatternSet.exhaustive(5)
    return circuit, patterns, FaultDictionary(circuit, patterns)


def test_dictionary_drops_undetectable_faults(c17_dict):
    circuit, patterns, dictionary = c17_dict
    # c17 has no redundant faults under exhaustive vectors
    assert len(dictionary) == 2 * 17


def test_exact_match_for_single_fault(c17_dict):
    circuit, patterns, dictionary = c17_dict
    for seed in range(4):
        workload = inject_stuck_at_faults(circuit, 1, seed=seed)
        matches = dictionary.lookup(workload.impl, top=5)
        best = matches[0]
        assert best.exact
        truth = workload.truth[0]
        # the top candidates are the truth fault's equivalence class;
        # the truth site must appear among the exact matches
        exact_sites = {(m.site, m.fault.value)
                       for m in matches if m.exact}
        assert (truth.site, int(truth.kind[-1])) in exact_sites


def test_ranking_degrades_gracefully_for_double_faults(c17_dict):
    """No exact single-fault match exists (usually), but the ranking
    still puts faults on the involved sites near the top."""
    circuit, patterns, dictionary = c17_dict
    workload = inject_stuck_at_faults(circuit, 2, seed=4)
    matches = dictionary.lookup(workload.impl, top=10)
    assert matches
    assert matches[0].hits >= matches[-1].hits - \
        (matches[-1].misses + matches[-1].mispredictions)
    truth_drivers = {r.site.split("->", 1)[0] for r in workload.truth}
    top_drivers = {m.site.split("->", 1)[0] for m in matches}
    assert truth_drivers & top_drivers


def test_pass_fail_vs_full_response_resolution():
    """The full-response dictionary can only sharpen the ranking."""
    circuit = generators.ripple_carry_adder(3)
    patterns = PatternSet.exhaustive(7)
    full = FaultDictionary(circuit, patterns, full_response=True)
    pf = FaultDictionary(circuit, patterns, full_response=False)
    workload = inject_stuck_at_faults(circuit, 1, seed=2)
    full_exact = [m for m in full.lookup(workload.impl, top=50)
                  if m.exact]
    pf_exact = [m for m in pf.lookup(workload.impl, top=50) if m.exact]
    full_sites = {(m.site, m.fault.value) for m in full_exact}
    pf_sites = {(m.site, m.fault.value) for m in pf_exact}
    assert full_sites <= pf_sites   # full response is strictly stricter
    assert full_exact               # and still finds the real fault


def test_clean_device_has_zero_hit_candidates(c17_dict):
    circuit, patterns, dictionary = c17_dict
    matches = dictionary.lookup(circuit.copy(), top=3)
    assert all(m.hits == 0 for m in matches)
    assert not any(m.exact for m in matches)
