"""SAT-backed candidate dedup: planted-workload regression tests.

The planted workload is a buffered AND driving an OR: a stuck-at-0
anywhere on the x/y/n1/n2 chain yields the *identical* repaired
function, so exact diagnosis reports four correction tuples that no
vector set can ever tell apart.  With ``prove_dedup`` on, the pass must
collapse them into one representative carrying the others as aliases —
and say so in ``EngineStats``.
"""

import dataclasses

from repro.circuit import GateType, Netlist
from repro.diagnose import (DiagnosisConfig, EngineStats,
                            IncrementalDiagnoser, Mode, Solution,
                            dedup_solutions, rectifies)
from repro.sim import PatternSet


def planted_netlist() -> Netlist:
    n = Netlist("plant")
    x = n.add_input("x")
    y = n.add_input("y")
    z = n.add_input("z")
    n1 = n.add_gate("n1", GateType.AND, [x, y])
    n2 = n.add_gate("n2", GateType.BUF, [n1])
    o = n.add_gate("o", GateType.OR, [n2, z])
    n.set_outputs([o])
    return n


def run_diagnosis(prove_dedup: bool):
    good = planted_netlist()
    faulty = planted_netlist()
    faulty.tie_stem_to_constant(faulty.index_of("n1"), 0)  # sa0@n1
    patterns = PatternSet.exhaustive(3)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=1, prove_dedup=prove_dedup)
    return (IncrementalDiagnoser(faulty, good, patterns, config).run(),
            faulty, patterns)


def test_planted_equivalent_corrections_collapse():
    plain, _faulty, _patterns = run_diagnosis(prove_dedup=False)
    assert len(plain.solutions) >= 2          # the inflation is real
    assert plain.stats.dedup_checked == 0     # off by default

    deduped, faulty, patterns = run_diagnosis(prove_dedup=True)
    assert len(deduped.solutions) < len(plain.solutions)
    assert deduped.stats.dedup_merged >= 1    # the collapse is reported
    assert deduped.stats.dedup_checked >= deduped.stats.dedup_merged
    rep = deduped.solutions[0]
    assert len(rep.aliases) == deduped.stats.dedup_merged
    assert rectifies(faulty, rep.netlist, patterns)
    # aliases are rendered in the summary
    assert "collapsed" in deduped.summary()
    assert "==" in deduped.summary()


def test_dedup_never_merges_distinguishable_candidates(c17):
    """On a real circuit, dedup must keep candidates that differ: every
    survivor's repaired netlist stays pairwise SAT-distinguishable."""
    from repro.faults import inject_stuck_at_faults
    from repro.tgen import sat_distinguishing_vector

    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 24, seed=0)   # few vectors: aliases
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=1, prove_dedup=True)
    result = IncrementalDiagnoser(workload.impl, c17, patterns,
                                  config).run()
    survivors = [s for s in result.solutions if s.netlist is not None]
    for i in range(len(survivors)):
        for j in range(i + 1, len(survivors)):
            _vec, status = sat_distinguishing_vector(
                survivors[i].netlist, survivors[j].netlist)
            assert status == "found", \
                "two equivalent candidates survived the dedup pass"


def test_dedup_solutions_skips_netlist_free_entries():
    rec = object()
    bare = Solution(records=(), netlist=None)
    stats = EngineStats()
    kept = dedup_solutions([bare, bare], stats)
    assert kept == [bare, bare]               # nothing to compare
    assert stats.dedup_checked == 0
    del rec


def test_unknown_budget_never_merges():
    """A conflict budget of 0 conflicts' worth of work must leave the
    candidates separate and count the unknowns — a budget exhaustion is
    not an equivalence proof."""
    nl_a = planted_netlist()
    nl_b = planted_netlist()
    nl_b.tie_stem_to_constant(nl_b.index_of("n1"), 0)
    sol_a = Solution(records=("a",), netlist=nl_a)
    sol_b = Solution(records=("b",), netlist=nl_b)
    stats = EngineStats()
    kept = dedup_solutions([sol_a, sol_b], stats, conflict_budget=1)
    # equal or not, nothing may merge without a completed proof
    assert (len(kept) == 2) == (stats.dedup_merged == 0)
    if stats.dedup_merged == 0 and stats.dedup_unknown == 0:
        # the solver refuted it outright — also a completed answer
        assert stats.dedup_checked == 1


def test_engine_stats_merge_accumulates_dedup_counters():
    a = EngineStats(dedup_checked=2, dedup_merged=1, dedup_unknown=1,
                    dedup_time=0.5)
    b = EngineStats(dedup_checked=3, dedup_merged=2, dedup_unknown=0,
                    dedup_time=0.25)
    a.merge(b)
    assert (a.dedup_checked, a.dedup_merged, a.dedup_unknown) == (5, 3, 1)
    assert a.dedup_time == 0.75


def test_solution_aliases_survive_replace():
    sol = Solution(records=(), netlist=None)
    assert sol.aliases == ()
    sol2 = dataclasses.replace(sol, aliases=("sa0@n2",))
    assert sol2.aliases == ("sa0@n2",)
    assert sol.aliases == ()
