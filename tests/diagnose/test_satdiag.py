"""SAT-based diagnosis baseline and cross-validation vs the engine."""

import pytest

from repro.circuit import generators
from repro.diagnose import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                            matches_truth, rectifies)
from repro.diagnose.satdiag import SatDiagnoser
from repro.faults import inject_stuck_at_faults
from repro.sim import PatternSet


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_sat_finds_single_fault(c17, seed):
    workload = inject_stuck_at_faults(c17, 1, seed=seed)
    patterns = PatternSet.random(5, 256, seed=5)
    result = SatDiagnoser(workload.impl, c17, patterns,
                          max_faults=1).run()
    assert result.found
    assert any(matches_truth(s, workload.truth)
               for s in result.solutions)
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sat_agrees_with_engine(c17, seed):
    """Two completely independent formulations must return identical
    minimal tuple sets on c17."""
    workload = inject_stuck_at_faults(c17, 2, seed=seed)
    patterns = PatternSet.random(5, 256, seed=5)
    sat = SatDiagnoser(workload.impl, c17, patterns, max_faults=2).run()
    engine = IncrementalDiagnoser(
        workload.impl, c17, patterns,
        DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                        max_errors=2)).run()
    assert {s.key for s in sat.solutions} \
        == {s.key for s in engine.solutions}


def test_sat_on_medium_circuit():
    circuit = generators.ripple_carry_adder(4)
    workload = inject_stuck_at_faults(circuit, 1, seed=7)
    patterns = PatternSet.random(circuit.num_inputs, 256, seed=1)
    result = SatDiagnoser(workload.impl, circuit, patterns,
                          max_faults=1, time_budget=60.0).run()
    assert result.found
    assert result.sat_candidates >= result.verified


def test_sat_verification_filters_subset_only_fits(c17):
    """With very few constraint vectors the solver proposes candidates
    that fail full-V verification; the result must only keep verified
    tuples."""
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 512, seed=5)
    result = SatDiagnoser(workload.impl, c17, patterns, max_faults=1,
                          max_constraint_vectors=2).run()
    for solution in result.solutions:
        assert rectifies(workload.impl, solution.netlist, patterns)
    assert result.sat_candidates >= len(result.solutions)


def test_sat_no_fault_returns_empty(c17):
    patterns = PatternSet.random(5, 128, seed=0)
    result = SatDiagnoser(c17.copy(), c17, patterns, max_faults=1).run()
    # equivalent circuits: constraint outputs match fault-free circuit,
    # but at-least-one selector forces a fault that must then verify
    # against zero failing vectors -> no *verified* solutions of any use
    for solution in result.solutions:
        assert rectifies(c17, solution.netlist, patterns)


def test_sat_suspect_restriction(c17):
    from repro.circuit import LineTable
    workload = inject_stuck_at_faults(c17, 1, seed=1)
    patterns = PatternSet.random(5, 256, seed=5)
    table = LineTable(c17)
    truth_site = workload.truth[0].site
    suspects = [l.index for l in table
                if l.describe(c17) != truth_site]
    result = SatDiagnoser(workload.impl, c17, patterns, max_faults=1,
                          suspects=suspects).run()
    # the actual site is excluded; only equivalent sites may remain
    assert all(truth_site not in s.sites for s in result.solutions)


def test_sat_agrees_with_engine_medium_circuit():
    """Cross-validation beyond c17: a 4-bit adder, double fault."""
    circuit = generators.ripple_carry_adder(4)
    workload = inject_stuck_at_faults(circuit, 2, seed=5)
    patterns = PatternSet.random(circuit.num_inputs, 384, seed=2)
    sat = SatDiagnoser(workload.impl, circuit, patterns, max_faults=2,
                       time_budget=90.0, max_solutions=128).run()
    engine = IncrementalDiagnoser(
        workload.impl, circuit, patterns,
        DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, max_errors=2,
                        max_nodes=30_000, time_budget=90.0)).run()
    got = {s.key for s in engine.solutions}
    want = {s.key for s in sat.solutions}
    # Both are budget-bounded enumerations; every engine tuple must be
    # found by SAT too when neither run truncates.
    if not engine.stats.truncated and not sat.truncated:
        assert got == want, (got ^ want)
    else:
        assert got & want  # at least the common core
