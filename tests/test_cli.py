"""Command-line interface."""

import pytest

from repro.circuit import bench_io, generators
from repro.cli import main


def test_suite_listing(capsys):
    assert main(["suite", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "c17" in out
    assert "r6288" in out


def test_suite_subset_and_unknown(capsys):
    assert main(["suite", "--circuits", "c17"]) == 0
    out = capsys.readouterr().out
    assert "r432" not in out
    with pytest.raises(SystemExit):
        main(["suite", "--circuits", "nope"])


def test_inject_and_diagnose_roundtrip(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "injected sa" in out
    assert impl_path.exists()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "stuck-at", "--vectors", "512",
               "--max-errors", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "correction set" in out


def test_inject_errors_mode(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.alu(4), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--errors", "2", "--seed", "1"]) == 0
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "design-error", "--vectors", "512",
               "--max-errors", "3", "--time-budget", "60"])
    assert rc in (0, 1)  # found or honestly reported not-found


def test_table1_tiny(capsys):
    assert main(["table1", "--circuits", "c17", "--faults", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "15"]) == 0
    out = capsys.readouterr().out
    assert "Stuck-At" in out


def test_table2_tiny(capsys):
    assert main(["table2", "--circuits", "c17", "--errors", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "15"]) == 0
    out = capsys.readouterr().out
    assert "Design Errors" in out


def test_ablation_tiny(capsys):
    assert main(["ablation", "--circuits", "c17", "--num-errors", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "10"]) == 0
    out = capsys.readouterr().out
    assert "variant" in out


def test_convert_roundtrip(tmp_path, capsys):
    bench_path = tmp_path / "rca.bench"
    v_path = tmp_path / "rca.v"
    back_path = tmp_path / "back.bench"
    bench_io.dump(generators.ripple_carry_adder(3), bench_path)
    assert main(["convert", str(bench_path), str(v_path)]) == 0
    assert main(["convert", str(v_path), str(back_path)]) == 0
    from repro.sim import PatternSet, equivalent, output_rows, simulate
    a = bench_io.load(bench_path)
    b = bench_io.load(back_path)
    patterns = PatternSet.exhaustive(7)
    assert equivalent(output_rows(a, simulate(a, patterns)),
                      output_rows(b, simulate(b, patterns)),
                      patterns.nbits)


def test_vcd_command(tmp_path, capsys):
    bench_path = tmp_path / "c17.bench"
    vcd_path = tmp_path / "c17.vcd"
    bench_io.dump(generators.c17(), bench_path)
    assert main(["vcd", str(bench_path), str(vcd_path),
                 "--vectors", "16"]) == 0
    assert "$enddefinitions" in vcd_path.read_text()


def test_lint_clean_circuit(tmp_path, capsys):
    path = tmp_path / "c17.bench"
    bench_io.dump(generators.c17(), path)
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_warnings_and_strict(tmp_path, capsys):
    path = tmp_path / "dead.bench"
    path.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                    "y = NAND(a, b)\nd1 = NOT(a)\nd2 = AND(d1, b)\n")
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "dead-gate" in out and "fanout-free" in out
    assert main(["lint", "--strict", str(path)]) == 1
    assert main(["lint", "--strict", "--suppress",
                 "dead-gate,fanout-free", str(path)]) == 0


def test_lint_unparsable_file_exits_2(tmp_path, capsys):
    path = tmp_path / "bad.bench"
    path.write_text("INPUT(x)\nOUTPUT(p)\np = AND(x, q)\nq = NOT(p)\n")
    assert main(["lint", str(path)]) == 2
    assert "cycle" in capsys.readouterr().err


def test_lint_json_format(tmp_path, capsys):
    import json as json_mod
    path = tmp_path / "c17.bench"
    bench_io.dump(generators.c17(), path)
    assert main(["lint", "--format", "json", str(path)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert data[0]["netlist"] == "c17"
    assert data[0]["counts"]["error"] == 0


PLANTED_BENCH = ("INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\n"
                 "na = NOT(a)\nk = AND(a, na)\n"
                 "g1 = AND(a, b)\ng2 = AND(b, a)\n"
                 "o1 = OR(k, g1)\no2 = XOR(g2, na)\n")


def test_lint_deep_flags_planted_defects(tmp_path, capsys):
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    assert main(["lint", str(path)]) == 0
    shallow = capsys.readouterr().out
    assert "const-line" not in shallow and "duplicate-logic" not in shallow
    assert main(["lint", "--deep", str(path)]) == 0
    out = capsys.readouterr().out
    assert "const-line" in out and "duplicate-logic" in out


def test_lint_json_deterministic(tmp_path, capsys):
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    runs = []
    for _ in range(2):
        assert main(["lint", "--deep", "--format", "json",
                     str(path)]) == 0
        runs.append(capsys.readouterr().out)
    assert runs[0] == runs[1]
    import json as json_mod
    data = json_mod.loads(runs[0])
    assert data[0]["netlist"] == "planted"
    rules = [d["rule"] for d in data[0]["diagnostics"]]
    assert rules == sorted(rules)
    assert all("severity" in d for d in data[0]["diagnostics"])


def test_facts_command_text_and_json(tmp_path, capsys):
    import json as json_mod
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    assert main(["facts", str(path)]) == 0
    text = capsys.readouterr().out
    assert "implied constants" in text and "k=0" in text
    assert "duplicate logic" in text
    assert main(["facts", "--format", "json", str(path)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert data[0]["netlist"] == "planted"
    assert data[0]["implied_constants"] == {"k": 0}
    assert any({"g1", "g2"} <= set(group)
               for group in data[0]["duplicate_groups"])
    assert "implications" in data[0]


def test_facts_no_deep_and_bad_file(tmp_path, capsys):
    import json as json_mod
    good = tmp_path / "planted.bench"
    good.write_text(PLANTED_BENCH)
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(x)\nOUTPUT(p)\np = AND(x, q)\n")
    assert main(["facts", "--no-deep", "--format", "json",
                 str(good)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert "implications" not in data[0]
    assert data[0]["implied_constants"] == {}
    assert main(["facts", str(bad), str(good)]) == 2
    captured = capsys.readouterr()
    assert "error" in captured.err
    assert "planted" in captured.out  # good files still reported


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "comb-loop" in out and "unobservable-line" in out


def test_diagnose_with_invariant_checks(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "1", "--seed", "3"]) == 0
    capsys.readouterr()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--vectors", "256", "--max-errors", "1",
               "--check-invariants"])
    assert rc == 0


def _dump_twin_netlists(tmp_path):
    """AND(a,b) in two shapes plus an OR imposter, on disk."""
    from repro.circuit import GateType, Netlist
    plain = Netlist("plain")
    a = plain.add_input("a")
    b = plain.add_input("b")
    o = plain.add_gate("o", GateType.AND, [a, b])
    plain.set_outputs([o])
    morgan = Netlist("morgan")
    a2 = morgan.add_input("a")
    b2 = morgan.add_input("b")
    na = morgan.add_gate("na", GateType.NOT, [a2])
    nb = morgan.add_gate("nb", GateType.NOT, [b2])
    o2 = morgan.add_gate("o", GateType.NOR, [na, nb])
    morgan.set_outputs([o2])
    imposter = Netlist("imposter")
    a3 = imposter.add_input("a")
    b3 = imposter.add_input("b")
    o3 = imposter.add_gate("o", GateType.OR, [a3, b3])
    imposter.set_outputs([o3])
    paths = []
    for nl in (plain, morgan, imposter):
        path = tmp_path / f"{nl.name}.bench"
        bench_io.dump(nl, path)
        paths.append(str(path))
    return paths


def test_prove_equivalent_exits_zero(tmp_path, capsys):
    plain, morgan, _ = _dump_twin_netlists(tmp_path)
    assert main(["prove", plain, morgan]) == 0
    assert "proven equivalent" in capsys.readouterr().out


def test_prove_different_prints_vector(tmp_path, capsys):
    plain, _, imposter = _dump_twin_netlists(tmp_path)
    assert main(["prove", plain, imposter]) == 1
    out = capsys.readouterr().out
    assert "distinguishing vector" in out
    assert "a=" in out and "b=" in out


def test_prove_unreadable_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(broken\n")
    plain, _, _ = _dump_twin_netlists(tmp_path)
    assert main(["prove", plain, str(bad)]) == 2
    assert "error" in capsys.readouterr().err


def test_prove_applied_correction_roundtrip(tmp_path, capsys):
    """The before/after-correction use case from the issue: a netlist
    and a copy with a correction applied at an equivalent point."""
    from repro.circuit import GateType, Netlist
    n = Netlist("plant")
    x = n.add_input("x")
    y = n.add_input("y")
    n1 = n.add_gate("n1", GateType.AND, [x, y])
    n2 = n.add_gate("n2", GateType.BUF, [n1])
    n.set_outputs([n2])
    stem = n.copy("stem_fix")
    stem.tie_stem_to_constant(stem.index_of("n1"), 0)
    branch = n.copy("branch_fix")
    branch.tie_stem_to_constant(branch.index_of("n2"), 0)
    p1 = tmp_path / "stem.bench"
    p2 = tmp_path / "branch.bench"
    bench_io.dump(stem, p1)
    bench_io.dump(branch, p2)
    assert main(["prove", str(p1), str(p2)]) == 0
    capsys.readouterr()


def test_lint_prove_json_carries_stats(tmp_path, capsys):
    import json as _json
    from repro.circuit import GateType, Netlist
    n = Netlist("dup")
    a = n.add_input("a")
    b = n.add_input("b")
    x = n.add_gate("x", GateType.XOR, [a, b])
    na = n.add_gate("na", GateType.NOT, [a])
    nb = n.add_gate("nb", GateType.NOT, [b])
    t1 = n.add_gate("t1", GateType.AND, [a, nb])
    t2 = n.add_gate("t2", GateType.AND, [na, b])
    y = n.add_gate("y", GateType.OR, [t1, t2])
    n.set_outputs([x, y])
    path = tmp_path / "dup.bench"
    bench_io.dump(n, path)
    assert main(["lint", "--prove", "--format", "json",
                 str(path)]) == 0
    payload = _json.loads(capsys.readouterr().out)
    report = payload[0]
    stats = report["prove_stats"]
    assert stats["proven"] >= 1
    assert "solver" in stats
    rules = {d["rule"] for d in report["diagnostics"]}
    assert "proven-duplicate-logic" in rules


def test_lint_list_rules_includes_prove_group(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "proven-const-line" in out
    assert "proven-duplicate-logic" in out
    assert "proven-redundant-fanin" in out


def test_diagnose_prove_dedup_flag(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "1", "--seed", "3"]) == 0
    capsys.readouterr()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "stuck-at", "--vectors", "64",
               "--max-errors", "1", "--prove-dedup"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "correction set" in out


def test_facts_stats_counters(tmp_path, capsys):
    import json as _json
    path = tmp_path / "c.bench"
    bench_io.dump(generators.c17(), path)
    assert main(["facts", "--stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "facts cache:" in out
    assert "recomputed" in out
    assert main(["facts", "--stats", "--format", "json",
                 str(path)]) == 0
    payload = _json.loads(capsys.readouterr().out)
    cache = payload["facts_cache"]
    assert cache["facts_recomputed"] >= 1
    assert set(cache) == {"facts_reused", "facts_recomputed",
                          "delta_edits"}
    # without --stats the JSON shape stays the plain digest list
    assert main(["facts", "--format", "json", str(path)]) == 0
    assert isinstance(_json.loads(capsys.readouterr().out), list)


def test_diagnose_json_surfaces_facts_counters(tmp_path, capsys):
    import json as _json
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.ripple_carry_adder(4), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "2", "--seed", "3"]) == 0
    capsys.readouterr()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "stuck-at", "--vectors", "512",
               "--max-errors", "2", "--format", "json"])
    payload = _json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["found"]
    stats = payload["stats"]
    assert stats["facts_reused"] > 0
    assert stats["delta_edits"] >= stats["facts_reused"]
    assert stats["facts_recomputed"] >= 0
    assert payload["solutions"][0]["corrections"]
    # the opt-out recomputes per node but returns identical solutions
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "stuck-at", "--vectors", "512",
               "--max-errors", "2", "--format", "json",
               "--no-incremental-facts"])
    scratch = _json.loads(capsys.readouterr().out)
    assert rc == 0
    assert scratch["solutions"] == payload["solutions"]
    assert scratch["stats"]["nodes"] == stats["nodes"]
    assert scratch["stats"]["facts_reused"] == 0
    assert scratch["stats"]["delta_edits"] == 0
