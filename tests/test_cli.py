"""Command-line interface."""

import pytest

from repro.circuit import bench_io, generators
from repro.cli import main


def test_suite_listing(capsys):
    assert main(["suite", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "c17" in out
    assert "r6288" in out


def test_suite_subset_and_unknown(capsys):
    assert main(["suite", "--circuits", "c17"]) == 0
    out = capsys.readouterr().out
    assert "r432" not in out
    with pytest.raises(SystemExit):
        main(["suite", "--circuits", "nope"])


def test_inject_and_diagnose_roundtrip(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "2", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "injected sa" in out
    assert impl_path.exists()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "stuck-at", "--vectors", "512",
               "--max-errors", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "correction set" in out


def test_inject_errors_mode(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.alu(4), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--errors", "2", "--seed", "1"]) == 0
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--mode", "design-error", "--vectors", "512",
               "--max-errors", "3", "--time-budget", "60"])
    assert rc in (0, 1)  # found or honestly reported not-found


def test_table1_tiny(capsys):
    assert main(["table1", "--circuits", "c17", "--faults", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "15"]) == 0
    out = capsys.readouterr().out
    assert "Stuck-At" in out


def test_table2_tiny(capsys):
    assert main(["table2", "--circuits", "c17", "--errors", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "15"]) == 0
    out = capsys.readouterr().out
    assert "Design Errors" in out


def test_ablation_tiny(capsys):
    assert main(["ablation", "--circuits", "c17", "--num-errors", "1",
                 "--trials", "1", "--vectors", "128",
                 "--time-budget", "10"]) == 0
    out = capsys.readouterr().out
    assert "variant" in out


def test_convert_roundtrip(tmp_path, capsys):
    bench_path = tmp_path / "rca.bench"
    v_path = tmp_path / "rca.v"
    back_path = tmp_path / "back.bench"
    bench_io.dump(generators.ripple_carry_adder(3), bench_path)
    assert main(["convert", str(bench_path), str(v_path)]) == 0
    assert main(["convert", str(v_path), str(back_path)]) == 0
    from repro.sim import PatternSet, equivalent, output_rows, simulate
    a = bench_io.load(bench_path)
    b = bench_io.load(back_path)
    patterns = PatternSet.exhaustive(7)
    assert equivalent(output_rows(a, simulate(a, patterns)),
                      output_rows(b, simulate(b, patterns)),
                      patterns.nbits)


def test_vcd_command(tmp_path, capsys):
    bench_path = tmp_path / "c17.bench"
    vcd_path = tmp_path / "c17.vcd"
    bench_io.dump(generators.c17(), bench_path)
    assert main(["vcd", str(bench_path), str(vcd_path),
                 "--vectors", "16"]) == 0
    assert "$enddefinitions" in vcd_path.read_text()


def test_lint_clean_circuit(tmp_path, capsys):
    path = tmp_path / "c17.bench"
    bench_io.dump(generators.c17(), path)
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_warnings_and_strict(tmp_path, capsys):
    path = tmp_path / "dead.bench"
    path.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                    "y = NAND(a, b)\nd1 = NOT(a)\nd2 = AND(d1, b)\n")
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "dead-gate" in out and "fanout-free" in out
    assert main(["lint", "--strict", str(path)]) == 1
    assert main(["lint", "--strict", "--suppress",
                 "dead-gate,fanout-free", str(path)]) == 0


def test_lint_unparsable_file_exits_2(tmp_path, capsys):
    path = tmp_path / "bad.bench"
    path.write_text("INPUT(x)\nOUTPUT(p)\np = AND(x, q)\nq = NOT(p)\n")
    assert main(["lint", str(path)]) == 2
    assert "cycle" in capsys.readouterr().err


def test_lint_json_format(tmp_path, capsys):
    import json as json_mod
    path = tmp_path / "c17.bench"
    bench_io.dump(generators.c17(), path)
    assert main(["lint", "--format", "json", str(path)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert data[0]["netlist"] == "c17"
    assert data[0]["counts"]["error"] == 0


PLANTED_BENCH = ("INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\n"
                 "na = NOT(a)\nk = AND(a, na)\n"
                 "g1 = AND(a, b)\ng2 = AND(b, a)\n"
                 "o1 = OR(k, g1)\no2 = XOR(g2, na)\n")


def test_lint_deep_flags_planted_defects(tmp_path, capsys):
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    assert main(["lint", str(path)]) == 0
    shallow = capsys.readouterr().out
    assert "const-line" not in shallow and "duplicate-logic" not in shallow
    assert main(["lint", "--deep", str(path)]) == 0
    out = capsys.readouterr().out
    assert "const-line" in out and "duplicate-logic" in out


def test_lint_json_deterministic(tmp_path, capsys):
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    runs = []
    for _ in range(2):
        assert main(["lint", "--deep", "--format", "json",
                     str(path)]) == 0
        runs.append(capsys.readouterr().out)
    assert runs[0] == runs[1]
    import json as json_mod
    data = json_mod.loads(runs[0])
    assert data[0]["netlist"] == "planted"
    rules = [d["rule"] for d in data[0]["diagnostics"]]
    assert rules == sorted(rules)
    assert all("severity" in d for d in data[0]["diagnostics"])


def test_facts_command_text_and_json(tmp_path, capsys):
    import json as json_mod
    path = tmp_path / "planted.bench"
    path.write_text(PLANTED_BENCH)
    assert main(["facts", str(path)]) == 0
    text = capsys.readouterr().out
    assert "implied constants" in text and "k=0" in text
    assert "duplicate logic" in text
    assert main(["facts", "--format", "json", str(path)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert data[0]["netlist"] == "planted"
    assert data[0]["implied_constants"] == {"k": 0}
    assert any({"g1", "g2"} <= set(group)
               for group in data[0]["duplicate_groups"])
    assert "implications" in data[0]


def test_facts_no_deep_and_bad_file(tmp_path, capsys):
    import json as json_mod
    good = tmp_path / "planted.bench"
    good.write_text(PLANTED_BENCH)
    bad = tmp_path / "bad.bench"
    bad.write_text("INPUT(x)\nOUTPUT(p)\np = AND(x, q)\n")
    assert main(["facts", "--no-deep", "--format", "json",
                 str(good)]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert "implications" not in data[0]
    assert data[0]["implied_constants"] == {}
    assert main(["facts", str(bad), str(good)]) == 2
    captured = capsys.readouterr()
    assert "error" in captured.err
    assert "planted" in captured.out  # good files still reported


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "comb-loop" in out and "unobservable-line" in out


def test_diagnose_with_invariant_checks(tmp_path, capsys):
    spec_path = tmp_path / "spec.bench"
    impl_path = tmp_path / "impl.bench"
    bench_io.dump(generators.c17(), spec_path)
    assert main(["inject", str(spec_path), str(impl_path),
                 "--faults", "1", "--seed", "3"]) == 0
    capsys.readouterr()
    rc = main(["diagnose", str(spec_path), str(impl_path),
               "--vectors", "256", "--max-errors", "1",
               "--check-invariants"])
    assert rc == 0
