"""Baseline-comparison harness."""

from repro.bench import format_compare, run_compare
from repro.circuit import generators


def test_compare_smoke(c17):
    rows = run_compare([c17], fault_counts=(1,), trials=2,
                       num_vectors=256, time_budget=15.0)
    cell = rows[0].cells[1]
    assert cell.trials == 2
    assert cell.engine_solved == 1.0
    assert cell.sat_solved == 1.0
    assert cell.agreement == 1.0       # independent formulations agree
    assert cell.dict_solved == 1.0
    text = format_compare(rows, (1,))
    assert "c17" in text and "agree" in text


def test_compare_two_faults_no_dictionary_column(c17):
    rows = run_compare([c17], fault_counts=(2,), trials=1,
                       num_vectors=256, time_budget=15.0)
    text = format_compare(rows, (2,))
    assert "-" in text  # dictionary column blank for k != 1
