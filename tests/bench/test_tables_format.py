"""Table formatting edge cases."""

from repro.bench.table1 import Table1Cell, Table1Row
from repro.bench.table2 import Table2Cell, Table2Row
from repro.bench.tables import format_table1, format_table2


def test_table1_missing_cells_render_dashes():
    row = Table1Row("ghost", 42, False)
    row.cells[1] = Table1Cell(1, trials=1, sites=2.0, tuples=2.0,
                              time_per_tuple=0.5)
    text = format_table1([row], fault_counts=(1, 2))
    assert "ghost" in text
    assert "-" in text          # the empty 2-fault cell
    assert "0.50" in text


def test_table1_empty_rows():
    text = format_table1([], fault_counts=(1,))
    assert "Stuck-At" in text


def test_table1_masking_footnote_only_for_sequential():
    comb = Table1Row("comb", 10, False)
    comb.cells[4] = Table1Cell(4, trials=1, masked_rate=1.0)
    text = format_table1([comb], fault_counts=(4,))
    assert "fault masking" not in text
    seq = Table1Row("seq", 10, True)
    seq.cells[4] = Table1Cell(4, trials=1, masked_rate=0.5)
    text = format_table1([seq], fault_counts=(4,))
    assert "fault masking" in text
    assert "50%" in text


def test_table2_solved_summary():
    row = Table2Row("x", 10, False)
    row.cells[3] = Table2Cell(3, trials=2, solved=0.5, nodes=10,
                              total_time=1.0)
    text = format_table2([row], error_counts=(3, 4))
    assert "solved: 50%" in text
    assert text.count("-") > 4  # missing 4-error cell rendered as dashes
