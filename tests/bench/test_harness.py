"""Experiment harnesses: tiny smoke runs + table formatting."""

from repro.bench import (format_ablation, format_table1, format_table2,
                         prepare_design_error, prepare_stuck_at,
                         run_ablation, run_table1, run_table2)
from repro.bench.workloads import (design_error_instance,
                                   stuck_at_instance)
from repro.circuit import generators


def test_prepare_stuck_at_optimizes_and_scans(s27):
    prepared = prepare_stuck_at(s27)
    assert prepared.is_sequential
    assert prepared.netlist.is_combinational
    assert prepared.num_lines > 0


def test_prepare_design_error_keeps_redundancy(c17):
    prepared = prepare_design_error(c17)
    assert not prepared.is_sequential
    assert len(prepared.netlist.gates) == len(c17.gates)


def test_instances_are_deterministic(c17):
    prepared = prepare_stuck_at(c17)
    a, pa = stuck_at_instance(prepared, 2, trial=1, num_vectors=64)
    b, pb = stuck_at_instance(prepared, 2, trial=1, num_vectors=64)
    assert [r.site for r in a.truth] == [r.site for r in b.truth]
    assert (pa.words == pb.words).all()
    c, _ = stuck_at_instance(prepared, 2, trial=2, num_vectors=64)
    assert [r.site for r in a.truth] != [r.site for r in c.truth]


def test_design_error_instance_observable(c17):
    prepared = prepare_design_error(c17)
    workload, patterns = design_error_instance(prepared, 1, trial=0,
                                               num_vectors=256)
    assert workload.truth


def test_run_table1_smoke(c17):
    rows = run_table1([c17], fault_counts=(1, 2), trials=2,
                      num_vectors=256, time_budget=20.0)
    assert len(rows) == 1
    row = rows[0]
    assert row.lines == 17
    cell1 = row.cells[1]
    assert cell1.trials == 2
    assert cell1.tuples >= 1
    assert 0 <= cell1.recovered_rate <= 1
    text = format_table1(rows, (1, 2))
    assert "c17" in text
    assert "# tuples" in text
    assert "Average" in text


def test_run_table2_smoke(c17):
    rows = run_table2([c17], error_counts=(2,), trials=2,
                      num_vectors=256, time_budget=20.0)
    cell = rows[0].cells[2]
    assert cell.trials == 2
    assert cell.nodes >= 1
    text = format_table2(rows, (2,))
    assert "c17" in text
    assert "diag." in text
    assert "solved" in text


def test_run_ablation_smoke(c17):
    results = run_ablation([c17], num_errors=1, trials=1,
                           num_vectors=256, time_budget=10.0,
                           variants=["paper (rounds, h2+h3)",
                                     "pure DFS"])
    assert len(results) == 2
    assert all(r.trials == 1 for r in results)
    text = format_ablation(results)
    assert "pure DFS" in text
