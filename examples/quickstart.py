#!/usr/bin/env python
"""Quickstart: diagnose two stuck-at faults in a small circuit.

Builds an 8-bit ripple-carry adder as the specification, corrupts a copy
with two random stuck-at faults (the "faulty device"), and runs the
incremental diagnosis engine in its exact mode.  The engine fault-models
the *good* netlist until it matches the faulty device's responses — the
returned correction tuples are exactly the candidate fault locations a
test engineer would probe.

Run:  python examples/quickstart.py
"""

from repro import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                   inject_stuck_at_faults, matches_truth, random_patterns)
from repro.circuit import generators


def main() -> None:
    spec = generators.ripple_carry_adder(8)
    print(f"specification: {spec.name} "
          f"({len(spec)} gates, {spec.num_inputs} PIs)")

    workload = inject_stuck_at_faults(spec, count=2, seed=42)
    print("injected faults (hidden from the engine):")
    for record in workload.truth:
        print(f"  {record.kind} at line {record.site}")

    patterns = random_patterns(spec, 1024, seed=1)
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True, max_errors=2)
    engine = IncrementalDiagnoser(spec=workload.impl,  # faulty device
                                  impl=spec,           # netlist to model
                                  patterns=patterns,
                                  config=config)
    result = engine.run()

    print(f"\n{len(result.solutions)} equivalent fault tuple(s) explain "
          f"all {result.initial_failing} failing vectors:")
    for solution in result.solutions:
        tag = "  <-- injected pair" if matches_truth(solution,
                                                     workload.truth) else ""
        print(f"  {solution.describe()}{tag}")
    print(f"\ndistinct sites to probe: "
          f"{sorted(result.distinct_sites())}")
    print(f"search effort: {result.stats.nodes} tree nodes, "
          f"{result.stats.total_time:.2f}s")


if __name__ == "__main__":
    main()
