#!/usr/bin/env python
"""Test generation flow: PODEM + compaction feeding diagnosis.

Reproduces the paper's vector recipe (§3): a compact deterministic test
set plus a block of random vectors.  The script measures stuck-at fault
coverage of each component, then shows why the mix matters for
*diagnosis resolution*: with better-covering vectors the engine returns
fewer equivalent fault tuples (a sharper answer for the test engineer).

Run:  python examples/atpg_flow.py
"""

from repro import (DiagnosisConfig, FaultSimulator, IncrementalDiagnoser,
                   LineTable, Mode, collapsed_faults,
                   inject_stuck_at_faults, random_patterns)
from repro.circuit import generators
from repro.tgen import deterministic_patterns, reverse_order_compact


def main() -> None:
    circuit = generators.alu(6)
    table = LineTable(circuit)
    faults = collapsed_faults(circuit, table)
    print(f"circuit: {circuit.name} ({len(circuit)} gates, "
          f"{len(table)} lines, {len(faults)} collapsed faults)")

    det = deterministic_patterns(circuit, seed=0)
    fsim = FaultSimulator(circuit, det, table)
    print(f"PODEM deterministic set: {det.nbits} vectors, "
          f"coverage {100 * fsim.coverage(faults):.1f}%")

    rand = random_patterns(circuit, 512, seed=1)
    fsim = FaultSimulator(circuit, rand, table)
    print(f"random set: {rand.nbits} vectors, "
          f"coverage {100 * fsim.coverage(faults):.1f}%")

    mixed = det.concat(rand)
    fsim = FaultSimulator(circuit, mixed, table)
    print(f"mixed set: {mixed.nbits} vectors, "
          f"coverage {100 * fsim.coverage(faults):.1f}%")

    compacted = reverse_order_compact(circuit, det, faults)
    fsim = FaultSimulator(circuit, compacted, table)
    print(f"after reverse-order compaction: {compacted.nbits} vectors, "
          f"coverage {100 * fsim.coverage(faults):.1f}%")

    # Diagnosis resolution: equivalent tuples with poor vs rich vectors.
    workload = inject_stuck_at_faults(circuit, count=2, seed=3)
    for label, patterns in [("64 random vectors",
                             random_patterns(circuit, 64, seed=2)),
                            ("PODEM + 512 random", mixed)]:
        config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                 max_errors=2, time_budget=60.0)
        result = IncrementalDiagnoser(workload.impl, circuit, patterns,
                                      config).run()
        print(f"diagnosis with {label}: {len(result.solutions)} "
              f"equivalent tuple(s), "
              f"{len(result.distinct_sites())} site(s) to probe")


if __name__ == "__main__":
    main()
