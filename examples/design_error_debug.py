#!/usr/bin/env python
"""Design Error Diagnosis and Correction (DEDC) on an ALU.

Scenario: an 8-bit ALU implementation drifted from its golden model —
three logic design errors (a wrong gate, a lost inverter, a mis-wired
input) slipped in during manual edits.  The engine proposes a concrete
sequence of corrections from the Abadir error model that makes the
implementation match the specification again.

The script also reconstructs the paper's Fig. 1 situation: two errors
whose sensitized paths reconverge, so the first (perfectly valid)
correction *temporarily increases* the number of failing vectors —
the reason heuristic 3 must tolerate some newly erroneous outputs.

Run:  python examples/design_error_debug.py
"""

from repro import (DiagnosisConfig, GateType, IncrementalDiagnoser, Mode,
                   Netlist, observable_design_error_workload,
                   random_patterns, rectifies)
from repro.circuit import generators
from repro.faults.models import apply_correction


def debug_alu() -> None:
    spec = generators.alu(8)
    patterns = random_patterns(spec, 2048, seed=7)
    workload = observable_design_error_workload(spec, 3, patterns,
                                                seed=11)
    print(f"golden model: {spec.name} ({len(spec)} gates)")
    print("injected design errors (hidden from the engine):")
    for record in workload.truth:
        print(f"  {record.kind} at {record.site}: {record.detail}")

    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=4, time_budget=120.0)
    engine = IncrementalDiagnoser(spec, workload.impl, patterns, config)
    result = engine.run()

    if not result.found:
        print("no correction set found within budget")
        return
    best = result.solutions[0]
    print(f"\nproposed rectification ({best.size} corrections, "
          f"{result.stats.nodes} tree nodes, "
          f"{result.stats.rounds} rounds, "
          f"{result.stats.total_time:.2f}s):")
    for record in best.records:
        print(f"  round {record.round_found}: {record.signature} "
              f"(ranked #{record.rank_position + 1} in its node)")


def fig1_reconvergence() -> None:
    """The paper's Fig. 1: two errors on reconverging paths."""
    print("\n--- Fig. 1 scenario: reconverging error effects ---")
    nl = Netlist("fig1")
    a = nl.add_input("a")
    b = nl.add_input("b")
    c = nl.add_input("c")
    d = nl.add_input("d")
    l1 = nl.add_gate("l1", GateType.AND, [a, b])   # error site 1
    l2 = nl.add_gate("l2", GateType.OR, [c, d])    # error site 2
    g = nl.add_gate("G", GateType.AND, [l1, l2])   # reconvergence gate
    nl.set_outputs([g])

    impl = nl.copy("fig1_bad")
    impl.set_gate_type(nl.index_of("l1"), GateType.NAND)  # error 1
    impl.set_gate_type(nl.index_of("l2"), GateType.NOR)   # error 2

    patterns = random_patterns(nl, 256, seed=3)
    from repro.diagnose import DiagnosisState
    from repro.sim import output_rows, simulate
    spec_out = output_rows(nl, simulate(nl, patterns))
    state = DiagnosisState(impl, patterns, spec_out)
    print(f"failing vectors with both errors: {state.num_err}")

    # Apply the (valid!) fix for error 1 alone.
    half = impl.copy("fig1_half")
    half.set_gate_type(impl.index_of("l1"), GateType.AND)
    half_state = DiagnosisState(half, patterns, spec_out)
    from repro.sim import popcount
    newly_broken = popcount(state.corr_mask & half_state.err_mask)
    print(f"failing vectors after fixing error 1 only: "
          f"{half_state.num_err}")
    print(f"previously-PASSING vectors that now FAIL: {newly_broken} "
          f"(> 0: a hard-zero heuristic 3 would have rejected this "
          f"perfectly valid correction)")

    config = DiagnosisConfig(mode=Mode.DESIGN_ERROR, exact=False,
                             max_errors=2)
    result = IncrementalDiagnoser(nl, impl, patterns, config).run()
    print(f"engine still finds the pair: {result.found} -> "
          f"{result.solutions[0].describe() if result.found else '-'}")
    assert result.found
    # The solution carries the repaired netlist; re-verify it.
    print(f"repaired netlist verified: "
          f"{rectifies(nl, result.solutions[0].netlist, patterns)}")


if __name__ == "__main__":
    debug_alu()
    fig1_reconvergence()
