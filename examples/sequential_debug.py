#!/usr/bin/env python
"""Non-scan sequential diagnosis via time-frame expansion.

The paper handles sequential designs through full scan; its conclusion
notes the algorithm "can be adapted to the diagnosis and correction of
sequential circuits through time-frame expansion" (§4).  This example
does exactly that on an LFSR-based circuit with **no scan access**: the
combinational logic is replicated over a window of clock cycles, a
physical stuck-at fault occupies its line in *every* frame, and joint
corrections (same line, all frames) are searched with the usual packed
screening.

Run:  python examples/sequential_debug.py
"""

from repro.circuit import generators
from repro.diagnose import TimeFrameDiagnoser, random_sequences
from repro.faults import inject_stuck_at_faults


def main() -> None:
    design = generators.lfsr(8, taps=(0, 2, 3, 4))
    print(f"design under debug: {design.name} "
          f"({len(design)} gates, {len(design.dffs())} DFFs, no scan)")

    frames = 10
    sequences = random_sequences(design, count=96, frames=frames,
                                 seed=7)
    print(f"stimulus: {len(sequences)} sequences x {frames} cycles")

    # Find an observable single-fault workload.
    workload = None
    for seed in range(40):
        candidate = inject_stuck_at_faults(design, 1, seed=seed)
        probe = TimeFrameDiagnoser(design, candidate.impl, sequences,
                                   frames=frames, max_faults=0,
                                   max_nodes=0)
        if probe._root.num_err > 0:
            workload = candidate
            break
    assert workload is not None, "no observable fault in 40 seeds"
    truth = workload.truth[0]
    print(f"injected (hidden): {truth.kind} at {truth.site}")

    diagnoser = TimeFrameDiagnoser(design, workload.impl, sequences,
                                   frames=frames, max_faults=2,
                                   time_budget=60.0)
    result = diagnoser.run()
    print(f"\n{len(result.solutions)} explaining tuple(s) over the "
          f"{frames}-cycle window ({result.stats.nodes} nodes, "
          f"{result.stats.total_time:.2f}s):")
    for solution in result.solutions[:10]:
        mark = ""
        drivers = {r.site.split('->', 1)[0] for r in solution.records}
        if truth.site.split("->", 1)[0] in drivers:
            mark = "   <-- contains the injected site"
        print(f"  {solution.describe()}{mark}")


if __name__ == "__main__":
    main()
