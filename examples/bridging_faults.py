#!/usr/bin/env python
"""Diagnosing a two-net short (bridging fault).

The paper closes with: "we plan to apply this approach to other types
of physical faults.  The advantage of the algorithm lies in the fact
that it can be adapted to other faults by adopting a suitable fault
model in the correction stage" (§4.1).  This example adopts exactly
such a model: wired-AND / wired-OR bridging faults between two nets,
scored with the same bit-parallel machinery the engine uses for wire
corrections, and verified by full-vector simulation.

Run:  python examples/bridging_faults.py
"""

from repro.circuit import generators
from repro.faults.bridging import BridgingDiagnoser, inject_bridging_fault
from repro.sim import count_failing, output_rows, simulate
from repro.tgen import random_patterns


def main() -> None:
    spec = generators.alu(6)
    patterns = random_patterns(spec, 768, seed=3)
    spec_out = output_rows(spec, simulate(spec, patterns))

    workload = None
    for seed in range(40):
        candidate = inject_bridging_fault(spec, seed=seed)
        impl_out = output_rows(candidate.impl,
                               simulate(candidate.impl, patterns))
        if count_failing(spec_out, impl_out, patterns.nbits) > 0:
            workload = candidate
            break
    assert workload is not None
    record = workload.truth[0]
    print(f"design: {spec.name} ({len(spec)} gates)")
    print(f"injected (hidden): {record.kind} short between "
          f"{record.site} and {record.detail.lstrip('<->')}")

    diagnoser = BridgingDiagnoser(workload.impl, spec, patterns,
                                  partner_limit=25, time_budget=60.0)
    result = diagnoser.run()
    print(f"\nscored {result.candidates_scored} candidate bridges, "
          f"{len(result.faults)} reproduce the device exactly "
          f"({result.total_time:.2f}s):")
    truth_nets = {record.site, record.detail.lstrip("<->")}
    for fault in result.faults[:12]:
        mark = ("   <-- injected pair"
                if {fault.net_a, fault.net_b} == truth_nets else "")
        print(f"  {fault}{mark}")


if __name__ == "__main__":
    main()
