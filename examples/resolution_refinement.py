#!/usr/bin/env python
"""Sharpening diagnosis resolution with distinguishing vectors.

Exact multi-fault diagnosis returns *every* fault tuple equivalent on
the simulated vector set — good recall, but a long probe list when V is
small.  This example closes the loop the way a tester would:

1. diagnose with a deliberately small V (many equivalent tuples),
2. generate a *distinguishing vector* for a pair of surviving candidate
   explanations (random search first, then a deterministic PODEM query
   on the miter of the two candidate netlists),
3. "measure" the faulty device on that vector and drop contradicted
   candidates,
4. repeat until the candidates are pairwise indistinguishable.

Run:  python examples/resolution_refinement.py
"""

from repro import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                   inject_stuck_at_faults, random_patterns)
from repro.circuit import generators
from repro.tgen import refine_diagnosis


def main() -> None:
    spec = generators.alu(4)
    workload = inject_stuck_at_faults(spec, 1, seed=1)
    print(f"golden: {spec.name}; injected (hidden): "
          f"{workload.truth[0].kind} at {workload.truth[0].site}")

    patterns = random_patterns(spec, 16, seed=2)  # deliberately few
    config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                             max_errors=1, time_budget=60.0)
    result = IncrementalDiagnoser(workload.impl, spec, patterns,
                                  config).run()
    print(f"\nwith only {patterns.nbits} vectors: "
          f"{len(result.solutions)} equivalent tuple(s), "
          f"{len(result.distinct_sites())} site(s) to probe")
    for solution in result.solutions[:8]:
        print(f"  {solution.describe()}")

    survivors, extended = refine_diagnosis(workload.impl,
                                           result.solutions, patterns)
    print(f"\nafter adding {extended.nbits - patterns.nbits} "
          f"distinguishing vector(s): {len(survivors)} candidate(s)")
    for solution in survivors:
        print(f"  {solution.describe()}")
    truth_driver = workload.truth[0].site.split("->", 1)[0]
    drivers = {r.driver_name for s in survivors for r in s.records}
    print(f"\ninjected site still among survivors: "
          f"{truth_driver in drivers}")


if __name__ == "__main__":
    main()
