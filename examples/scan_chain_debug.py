#!/usr/bin/env python
"""Diagnosing a full-scan sequential design (the paper's ISCAS'89 flow).

A sequential controller (DFF feedback) fails on the tester.  Because the
design is full-scan, every flip-flop is directly controllable and
observable, so one scan-load + capture behaves like a combinational test:
DFF outputs become pseudo-primary inputs and DFF data inputs become
pseudo-primary outputs.  The diagnosis engine then works unchanged.

The script also shows the fault-masking effect the paper reports for
sequential circuits: with several injected faults, a *smaller* equivalent
tuple sometimes explains all responses.

Run:  python examples/scan_chain_debug.py
"""

from repro import (DiagnosisConfig, IncrementalDiagnoser, Mode,
                   SequentialSimulator, full_scan,
                   inject_stuck_at_faults, matches_truth,
                   random_patterns)
from repro.circuit import generators
from repro.circuit.transform import optimize_area


def main() -> None:
    sequential = generators.random_sequential(
        num_inputs=8, num_gates=220, num_dffs=10, num_outputs=6, seed=5)
    print(f"sequential design: {sequential.name} "
          f"({len(sequential)} gates, {len(sequential.dffs())} DFFs)")

    scan_model, scan_map = full_scan(sequential)
    scan_model = optimize_area(scan_model, name="scan_model")
    print(f"full-scan model: {scan_model.num_inputs} PIs "
          f"({scan_map.num_pis} real + "
          f"{scan_model.num_inputs - scan_map.num_pis} PPIs), "
          f"{scan_model.num_outputs} POs "
          f"({scan_map.num_pos} real + "
          f"{scan_model.num_outputs - scan_map.num_pos} PPOs)")

    # Sanity: the scan model agrees with cycle-accurate simulation.
    sim = SequentialSimulator(sequential)
    print(f"cycle-accurate oracle available: "
          f"{type(sim).__name__} (used by the test suite)")

    masked = recovered = 0
    trials = 6
    for trial in range(trials):
        workload = inject_stuck_at_faults(scan_model, count=4,
                                          seed=100 + trial)
        patterns = random_patterns(scan_model, 1024, seed=trial)
        config = DiagnosisConfig(mode=Mode.STUCK_AT, exact=True,
                                 max_errors=4, max_nodes=3000,
                                 time_budget=45.0)
        engine = IncrementalDiagnoser(workload.impl, scan_model,
                                      patterns, config)
        result = engine.run()
        is_masked = result.found and result.min_size < 4
        masked += is_masked
        recovered += any(matches_truth(s, workload.truth)
                         for s in result.solutions)
        print(f"  trial {trial}: {len(result.solutions)} tuple(s) of "
              f"size {result.min_size}, "
              f"{len(result.distinct_sites())} site(s)"
              + (" [fault masking: smaller tuple explains all]"
                 if is_masked else ""))
    print(f"\n4-fault trials: {recovered}/{trials} recovered the "
          f"injected set; {masked}/{trials} showed fault masking "
          f"(the paper reports ~30% for sequential circuits)")


if __name__ == "__main__":
    main()
